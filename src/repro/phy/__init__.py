"""Physical-layer substrate for backscatter simulation.

The paper's key PHY observation (§2) is that a narrowband backscatter link is
a **single-tap channel**: each tag's contribution to the received baseband is
its transmitted bit (0/1, ON-OFF keying) multiplied by one complex
coefficient ``h_i``, plus the reader's continuous-wave leakage and thermal
noise. There is no carrier-frequency offset because tags reflect the reader's
own carrier.

This package implements that model at two resolutions:

* **per-slot symbols** — one complex sample per time slot, the abstraction
  Buzz's identification and rateless decoders consume (Eq. 3 / Eq. 7);
* **oversampled waveforms** — magnitude/IQ traces with many samples per bit,
  used by the microbenchmarks (Figs. 2, 3, 8) and the synchronization study.
"""

from repro.phy.channel import (
    ChannelModel,
    SingleTapChannel,
    backscatter_path_gain,
    near_far_spread_db,
)
from repro.phy.constellation import (
    Constellation,
    collision_constellation,
    min_distance,
    nearest_point,
)
from repro.phy.noise import awgn, noise_std_for_snr, snr_db as measure_snr_db
from repro.phy.signal import (
    CW_LEVEL,
    collision_trace,
    ook_waveform,
    received_symbols,
    slot_energies,
    tag_baseband,
)
from repro.phy.sync import (
    ClockModel,
    SyncProfile,
    COMMERCIAL_RFID_SYNC,
    MOO_RFID_SYNC,
    misalignment_fraction,
    sample_initial_offsets,
)

__all__ = [
    "COMMERCIAL_RFID_SYNC",
    "CW_LEVEL",
    "ChannelModel",
    "ClockModel",
    "Constellation",
    "MOO_RFID_SYNC",
    "SingleTapChannel",
    "SyncProfile",
    "awgn",
    "backscatter_path_gain",
    "collision_constellation",
    "collision_trace",
    "measure_snr_db",
    "min_distance",
    "misalignment_fraction",
    "near_far_spread_db",
    "nearest_point",
    "noise_std_for_snr",
    "ook_waveform",
    "received_symbols",
    "sample_initial_offsets",
    "slot_energies",
    "tag_baseband",
]
