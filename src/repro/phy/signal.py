"""Baseband signal synthesis for backscatter links.

Two resolutions are provided:

* :func:`received_symbols` — one complex sample per slot, the model the
  protocol decoders consume (Eq. 3 / Eq. 7 of the paper):
  ``y_j = Σ_i h_i · b_{j,i} + n_j``.
* :func:`ook_waveform` / :func:`collision_trace` — oversampled IQ traces that
  include the reader's continuous-wave (CW) leakage, used to regenerate the
  Fig. 2 magnitude plots and the Fig. 3 constellations.

The CW leakage is the large quasi-static component the reader receives from
its own transmitter; tags *add* their reflection on top of it, which is why
Fig. 2's magnitude rides around 0.8 rather than 0.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.phy.noise import awgn, awgn_block
from repro.utils.bits import as_bits
from repro.utils.validation import ensure_positive_int

__all__ = [
    "CW_LEVEL",
    "tag_baseband",
    "ook_waveform",
    "collision_trace",
    "received_symbols",
    "received_symbol_block",
    "slot_energies",
]

#: Default complex amplitude of the reader's continuous-wave leakage at the
#: receiver. The exact value is irrelevant to the decoders (they subtract
#: it); it only anchors the waveform plots near the paper's magnitude scale.
CW_LEVEL: complex = 0.80 - 0.95j


def tag_baseband(bits: Sequence[int], samples_per_bit: int) -> np.ndarray:
    """Rectangular ON-OFF keying: repeat each bit ``samples_per_bit`` times.

    Returns a float array in {0.0, 1.0}; multiply by the tag's channel to get
    its complex contribution at the reader.
    """
    ensure_positive_int(samples_per_bit, "samples_per_bit")
    arr = as_bits(bits).astype(float)
    return np.repeat(arr, samples_per_bit)


def ook_waveform(
    bits: Sequence[int],
    channel: complex,
    samples_per_bit: int = 50,
    noise_std: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    cw_level: complex = CW_LEVEL,
) -> np.ndarray:
    """Oversampled received waveform of a single tag's OOK transmission.

    ``y(t) = cw_level + h · b(t) + n(t)`` — two magnitude levels, one per bit
    value (paper Fig. 2(a)).
    """
    base = tag_baseband(bits, samples_per_bit) * channel + cw_level
    if noise_std > 0:
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        base = base + awgn(base.shape, noise_std, rng)
    return base


def collision_trace(
    bit_matrix: np.ndarray,
    channels: Sequence[complex],
    samples_per_bit: int = 50,
    noise_std: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    cw_level: complex = CW_LEVEL,
    sample_offsets: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Oversampled waveform of ``K`` tags colliding.

    Parameters
    ----------
    bit_matrix:
        ``(K, n_bits)`` array; row *i* is tag *i*'s bit stream.
    channels:
        ``K`` complex coefficients.
    sample_offsets:
        Optional per-tag integer sample delays modelling imperfect
        synchronization (used by the Fig. 8 drift study). Positive values
        delay the tag's waveform; the trace is truncated to the shortest
        aligned length.

    With two tags the magnitude of the result exhibits four levels — the
    "00/01/10/11" structure of paper Fig. 2(b).
    """
    bit_matrix = np.atleast_2d(np.asarray(bit_matrix, dtype=np.uint8))
    channels = np.asarray(channels, dtype=complex)
    if bit_matrix.shape[0] != channels.size:
        raise ValueError(
            f"bit_matrix has {bit_matrix.shape[0]} rows but {channels.size} channels given"
        )
    n_samples = bit_matrix.shape[1] * samples_per_bit
    offsets = np.zeros(channels.size, dtype=int)
    if sample_offsets is not None:
        offsets = np.asarray(sample_offsets, dtype=int)
        if offsets.size != channels.size:
            raise ValueError("sample_offsets length must match number of tags")
        if np.any(offsets < 0):
            raise ValueError("sample_offsets must be non-negative")
    max_off = int(offsets.max()) if offsets.size else 0
    total = n_samples + max_off
    acc = np.full(total, cw_level, dtype=complex)
    for i in range(channels.size):
        wave = tag_baseband(bit_matrix[i], samples_per_bit) * channels[i]
        acc[offsets[i] : offsets[i] + n_samples] += wave
    acc = acc[max_off : max_off + n_samples] if max_off else acc
    if noise_std > 0:
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        acc = acc + awgn(acc.shape, noise_std, rng)
    return acc


def received_symbols(
    transmit_matrix: np.ndarray,
    channels: Sequence[complex],
    noise_std: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-slot complex symbols ``y = B^T·h + n`` (CW leakage removed).

    Parameters
    ----------
    transmit_matrix:
        ``(n_slots, K)`` binary matrix; entry ``(j, i)`` is 1 if tag *i*
        reflects during slot *j*. This is the matrix ``A`` of Eq. 2 during
        identification and ``D`` of Eq. 7 during data transfer.
    channels:
        ``K`` complex channel coefficients.

    Returns
    -------
    ``(n_slots,)`` complex array of received symbols.
    """
    tx = np.atleast_2d(np.asarray(transmit_matrix, dtype=float))
    h = np.asarray(channels, dtype=complex)
    if tx.shape[1] != h.size:
        raise ValueError(f"transmit matrix has {tx.shape[1]} columns but {h.size} channels given")
    y = tx @ h
    if noise_std > 0:
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        y = y + awgn(y.shape, noise_std, rng)
    return y


def received_symbol_block(
    rows: np.ndarray,
    bit_matrix: np.ndarray,
    channels: Sequence[complex],
    noise_std: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Data-phase received symbols for a whole block of collision slots.

    Parameters
    ----------
    rows:
        ``(n_slots, K)`` binary collision-matrix rows — slot *j*'s row of
        ``D`` (which tags reflect during slot *j*).
    bit_matrix:
        ``(K, P)`` message bits; column *p* is the bit every tag reflects
        while position *p* is on the air.
    channels:
        ``K`` complex channel coefficients.

    Returns
    -------
    ``(n_slots, P)`` complex symbols, ``y[j, p] = Σ_i h_i·D[j,i]·b[i,p] + n``.

    The noise consumes the generator stream exactly as ``n_slots``
    successive per-slot :func:`received_symbols` calls would (see
    :func:`repro.phy.noise.awgn_block`); the clean signal collapses the
    per-slot gemvs into one gemm, so it matches the per-slot path to float
    rounding (last-ulp), not bit for bit.
    """
    rows_f = np.atleast_2d(np.asarray(rows, dtype=float))
    bits_f = np.asarray(bit_matrix, dtype=float)
    h = np.asarray(channels, dtype=complex)
    if rows_f.shape[1] != h.size:
        raise ValueError(f"rows have {rows_f.shape[1]} columns but {h.size} channels given")
    if bits_f.shape[0] != h.size:
        raise ValueError(f"bit_matrix has {bits_f.shape[0]} rows but {h.size} channels given")
    y = (rows_f * h[None, :]) @ bits_f
    if noise_std > 0:
        if rng is None:
            raise ValueError("rng is required when noise_std > 0")
        y = y + awgn_block(rows_f.shape[0], bits_f.shape[1], noise_std, rng)
    return y


def slot_energies(symbols: np.ndarray) -> np.ndarray:
    """Per-slot received power ``|y_j|^2``.

    The K-estimation and bucketing stages only need an occupied/empty
    decision per slot, which the reader makes by thresholding this energy.
    """
    return np.abs(np.asarray(symbols)) ** 2
