"""Synchronization: initial offsets and clock drift (paper §8.1).

Backscatter tags are triggered by the reader's command, so they start nearly
simultaneously; the residual error has two components the paper measures:

* **initial offset** — jitter in detecting the reader's trigger. Measured
  90th percentiles: 0.3 µs (Alien commercial tags), 0.5 µs (Moo), with a
  hard ceiling < 1 µs (Fig. 7).
* **clock drift** — each tag times its bits off its own oscillator whose
  rate differs from nominal by a fixed ppm; over a 2 ms message this grows
  to ~50 % of a symbol at 80 kbps unless corrected (Fig. 8a). Tags correct
  it by counting ticks between two reader pulses and inserting compensation
  cycles (Fig. 8b), leaving only a small residual.

The distributions here are parametric stand-ins for the paper's hardware
measurements; their shape parameters are taken from the quoted statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.units import us
from repro.utils.validation import ensure_positive, ensure_positive_int

__all__ = [
    "SyncProfile",
    "COMMERCIAL_RFID_SYNC",
    "MOO_RFID_SYNC",
    "sample_initial_offsets",
    "ClockModel",
    "misalignment_fraction",
]


@dataclass(frozen=True)
class SyncProfile:
    """Initial-offset distribution of a tag family.

    Offsets are drawn from a truncated exponential-like distribution scaled
    so the 90th percentile and maximum match the paper's measurements.
    """

    name: str
    p90_offset_s: float
    max_offset_s: float

    def __post_init__(self) -> None:
        ensure_positive(self.p90_offset_s, "p90_offset_s")
        ensure_positive(self.max_offset_s, "max_offset_s")
        if self.max_offset_s < self.p90_offset_s:
            raise ValueError("max_offset_s must be >= p90_offset_s")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` non-negative offsets (seconds), capped at the maximum.

        Uses an exponential with rate set so P(X <= p90) = 0.9, rejected /
        clipped at ``max_offset_s`` — a simple shape that matches the CDF
        knee the paper shows.
        """
        ensure_positive_int(n, "n")
        scale = self.p90_offset_s / np.log(10.0)  # P(Exp(scale) <= p90) = 0.9
        draws = rng.exponential(scale, size=n)
        return np.minimum(draws, self.max_offset_s)


#: Alien Squiggle commercial UHF RFID tags (paper Fig. 7: 90th pct 0.3 µs).
COMMERCIAL_RFID_SYNC = SyncProfile("commercial", p90_offset_s=us(0.3), max_offset_s=us(0.95))

#: UMass Moo computational RFID (paper Fig. 7: 90th pct 0.5 µs).
MOO_RFID_SYNC = SyncProfile("moo", p90_offset_s=us(0.5), max_offset_s=us(0.98))


def sample_initial_offsets(
    profile: SyncProfile, n_tags: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-tag initial offsets (seconds) for a concurrent reply."""
    return profile.sample(n_tags, rng)


@dataclass(frozen=True)
class ClockModel:
    """A tag oscillator with a fixed fractional frequency error.

    ``drift_ppm`` is the part-per-million error of the tag clock relative to
    the reader's virtual clock. The paper notes each tag's drift is stable
    over months, so tags estimate it once and compensate thereafter;
    ``residual_ppm`` is what remains after that correction.
    """

    drift_ppm: float
    residual_ppm: float = 1.0

    def offset_after(self, elapsed_s: float, corrected: bool) -> float:
        """Accumulated timing error (seconds) after ``elapsed_s`` of transmission."""
        if elapsed_s < 0:
            raise ValueError("elapsed_s must be >= 0")
        ppm = self.residual_ppm if corrected else self.drift_ppm
        return elapsed_s * ppm * 1e-6

    def sample_offsets(
        self, bit_rate_hz: float, n_bits: int, corrected: bool
    ) -> np.ndarray:
        """Timing error at the start of each of ``n_bits`` bits (seconds)."""
        ensure_positive(bit_rate_hz, "bit_rate_hz")
        ensure_positive_int(n_bits, "n_bits")
        times = np.arange(n_bits, dtype=float) / bit_rate_hz
        ppm = self.residual_ppm if corrected else self.drift_ppm
        return times * ppm * 1e-6

    @staticmethod
    def sample_population(
        n_tags: int,
        rng: np.random.Generator,
        mean_abs_ppm: float = 250.0,
        std_ppm: float = 80.0,
    ) -> "list[ClockModel]":
        """Draw per-tag drift models.

        Defaults reproduce the paper's Fig. 8 observation: at 80 kbps two
        uncorrected tags misalign by ~50 % of a symbol (6.25 µs) after 2 ms,
        i.e. a relative drift of ~3000 ppm between the two worst-case tag
        clocks is possible on the Moo's low-cost oscillator; we use a
        population mean |drift| of 250 ppm with heavy dispersion so the
        *pairwise* spread covers the measured range.
        """
        ensure_positive_int(n_tags, "n_tags")
        magnitudes = np.abs(rng.normal(mean_abs_ppm, std_ppm, size=n_tags))
        signs = rng.choice([-1.0, 1.0], size=n_tags)
        return [ClockModel(drift_ppm=float(m * s)) for m, s in zip(magnitudes, signs)]


def misalignment_fraction(
    clock_a: ClockModel,
    clock_b: ClockModel,
    elapsed_s: float,
    bit_rate_hz: float,
    corrected: bool,
) -> float:
    """Relative misalignment of two tags after ``elapsed_s``, as a fraction of a bit.

    This is the quantity Fig. 8 visualises: ~0.5 after 2 ms at 80 kbps
    without correction, ~0 with correction.
    """
    ensure_positive(bit_rate_hz, "bit_rate_hz")
    delta = abs(
        clock_a.offset_after(elapsed_s, corrected) - clock_b.offset_after(elapsed_s, corrected)
    )
    return float(delta * bit_rate_hz)
