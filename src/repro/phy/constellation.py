"""Collision constellations.

When K tags reflect concurrently, the noiseless received symbol takes one of
``2^K`` values ``Σ_i h_i·b_i`` (plus the CW offset) — a constellation whose
density grows with the number of colliders (paper Fig. 3). These helpers
enumerate that constellation, measure its minimum distance (which governs
decodability at a given noise level) and classify received samples to their
nearest point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.bits import bits_from_int

__all__ = ["Constellation", "collision_constellation", "min_distance", "nearest_point"]


@dataclass(frozen=True)
class Constellation:
    """Enumerated collision constellation for K single-tap channels.

    Attributes
    ----------
    points:
        ``(2^K,)`` complex array; ``points[v]`` is the symbol produced when
        the colliding bit-vector, read as a big-endian integer, equals ``v``.
    labels:
        ``(2^K, K)`` uint8 matrix of the corresponding bit vectors.
    """

    points: np.ndarray
    labels: np.ndarray

    @property
    def k(self) -> int:
        """Number of colliding tags."""
        return int(self.labels.shape[1])

    @property
    def size(self) -> int:
        """Number of constellation points (2^K)."""
        return int(self.points.size)

    def min_distance(self) -> float:
        """Smallest pairwise distance between points (0 if degenerate)."""
        return min_distance(self.points)

    def decode(self, samples: np.ndarray) -> np.ndarray:
        """Map received complex samples to the bit-vectors of their nearest points.

        Returns an ``(n, K)`` uint8 matrix.
        """
        samples = np.atleast_1d(np.asarray(samples, dtype=complex))
        idx = nearest_point(samples, self.points)
        return self.labels[idx]


def collision_constellation(channels: Sequence[complex], cw_level: complex = 0.0) -> Constellation:
    """Enumerate all ``2^K`` noiseless symbols for K colliding channels.

    ``cw_level`` offsets every point by the reader's CW leakage, matching
    what a receiver that does not subtract the carrier would observe
    (Fig. 3 plots raw IQ, hence its off-origin cluster positions).
    """
    h = np.asarray(channels, dtype=complex)
    k = h.size
    if k == 0:
        raise ValueError("need at least one channel")
    if k > 16:
        raise ValueError("refusing to enumerate more than 2^16 constellation points")
    labels = np.zeros((1 << k, k), dtype=np.uint8)
    for value in range(1 << k):
        labels[value] = bits_from_int(value, k)
    points = labels.astype(float) @ h + cw_level
    return Constellation(points=points, labels=labels)


def min_distance(points: np.ndarray) -> float:
    """Minimum pairwise Euclidean distance among complex points."""
    pts = np.asarray(points, dtype=complex).ravel()
    if pts.size < 2:
        return float("inf")
    diff = np.abs(pts[:, None] - pts[None, :])
    diff[np.diag_indices(pts.size)] = np.inf
    return float(diff.min())


def nearest_point(samples: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Index of the nearest constellation point for each sample."""
    samples = np.atleast_1d(np.asarray(samples, dtype=complex))
    pts = np.asarray(points, dtype=complex).ravel()
    if pts.size == 0:
        raise ValueError("constellation is empty")
    return np.argmin(np.abs(samples[:, None] - pts[None, :]), axis=1)
