"""Complex AWGN at the backscatter reader.

Noise is circularly-symmetric complex Gaussian. Throughout the code base the
``noise_std`` of a link is the std of the *complex* sample, i.e. each of the
real and imaginary parts has std ``noise_std / sqrt(2)`` and
``E[|n|^2] = noise_std^2``.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.utils.units import db_to_power, power_to_db
from repro.utils.validation import ensure_positive

__all__ = ["awgn", "awgn_block", "noise_std_for_snr", "snr_db"]


def awgn(
    shape: Union[int, Tuple[int, ...]],
    noise_std: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with ``E[|n|^2] = noise_std^2``."""
    if noise_std < 0:
        raise ValueError("noise_std must be >= 0")
    if noise_std == 0:
        return np.zeros(shape, dtype=complex)
    scale = noise_std / np.sqrt(2.0)
    return scale * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))


def awgn_block(
    n_slots: int,
    n_symbols: int,
    noise_std: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """``n_slots`` rows of complex AWGN, stream-identical to per-slot draws.

    Returns the same ``(n_slots, n_symbols)`` values — bit for bit — as
    ``n_slots`` successive ``awgn(n_symbols, ...)`` calls on the same
    generator, while consuming the stream in one vectorized draw: each
    per-slot call draws ``n_symbols`` reals then ``n_symbols`` imaginaries,
    and a C-ordered ``(n_slots, 2, n_symbols)`` ``standard_normal`` fills in
    exactly that order. This is what lets the data-phase PHY loop batch a
    whole row block without perturbing any seeded session.
    """
    if noise_std < 0:
        raise ValueError("noise_std must be >= 0")
    if noise_std == 0:
        return np.zeros((n_slots, n_symbols), dtype=complex)
    scale = noise_std / np.sqrt(2.0)
    draws = rng.standard_normal((n_slots, 2, n_symbols))
    return scale * (draws[:, 0, :] + 1j * draws[:, 1, :])


def noise_std_for_snr(signal_amplitude: float, snr_db_value: float) -> float:
    """Noise std that puts a signal of the given amplitude at ``snr_db_value``."""
    ensure_positive(signal_amplitude, "signal_amplitude")
    return float(signal_amplitude / np.sqrt(db_to_power(snr_db_value)))


def snr_db(signal: np.ndarray, noise_std: float) -> float:
    """Empirical SNR (power dB) of a complex signal against a known noise std."""
    ensure_positive(noise_std, "noise_std")
    sig = np.asarray(signal)
    power = float(np.mean(np.abs(sig) ** 2))
    return float(power_to_db(power / noise_std**2))
