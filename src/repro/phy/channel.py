"""Single-tap channel models for backscatter links.

The paper (§2, Eq. 3) models each tag's channel as one complex number
``h_i``; the magnitude is set by the *round-trip* backscatter path loss
(reader → tag → reader) and the phase by geometry. Tags at different
distances therefore present very different amplitudes at the reader — the
**near-far effect** §6(d) discusses.

:class:`ChannelModel` is the experiment-facing sampler: it draws a vector of
per-tag coefficients from a distance distribution plus Rician small-scale
fading, and reports the implied per-tag SNRs for a given noise floor.
:class:`SingleTapChannel` is the tiny value object the decoders consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.units import db_to_power, power_to_db
from repro.utils.validation import ensure_positive, ensure_positive_int

__all__ = [
    "SingleTapChannel",
    "ChannelModel",
    "MobilityModel",
    "ChannelTrajectory",
    "MultiReaderModel",
    "ZoneTrajectory",
    "COLLISION_MODES",
    "backscatter_path_gain",
    "near_far_spread_db",
]

#: Reader-to-reader interference resolutions the multi-reader simulator
#: supports — the FADR collision-model ladder:
#:
#: * ``"naive"``  — any temporal overlap with a foreign reflection in the
#:   zone corrupts the slot (both-lost, FADR mode 0);
#: * ``"capture"`` — the slot survives cleanly when the desired power
#:   exceeds the interference by the capture margin (FADR mode 1);
#: * ``"interference"`` — non-orthogonal superposition: the slot is never
#:   discarded, the foreign energy lands in the received symbols as extra
#:   noise (FADR mode 2).
COLLISION_MODES: Tuple[str, ...] = ("naive", "capture", "interference")


def backscatter_path_gain(distance_m, exponent: float = 2.0, reference_m: float = 0.3) -> np.ndarray:
    """Amplitude gain of the round-trip backscatter path at ``distance_m``.

    Free-space power falls as ``d^-2`` per direction, so the round-trip
    backscatter *power* falls as ``d^-4`` and the *amplitude* as ``d^-2``
    (``exponent = 2``). ``reference_m`` is the distance at which the gain is
    1.0; the paper's testbed spans 0.15–1.8 m (0.5–6 ft).
    """
    ensure_positive(exponent, "exponent")
    ensure_positive(reference_m, "reference_m")
    d = np.asarray(distance_m, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distances must be strictly positive")
    return (reference_m / d) ** exponent


@dataclass(frozen=True)
class SingleTapChannel:
    """One tag's channel: a single complex coefficient.

    Attributes
    ----------
    h:
        Complex channel coefficient multiplying the tag's ON-OFF bit.
    """

    h: complex

    @property
    def magnitude(self) -> float:
        """|h| — the received amplitude of the tag's reflection."""
        return abs(self.h)

    @property
    def phase(self) -> float:
        """Phase of ``h`` in radians."""
        return float(np.angle(self.h))

    def snr_db(self, noise_std: float) -> float:
        """Per-tag SNR in dB against complex noise of std ``noise_std``."""
        ensure_positive(noise_std, "noise_std")
        return float(power_to_db(self.magnitude**2 / noise_std**2))

    def apply(self, bits: np.ndarray) -> np.ndarray:
        """Return ``h · bits`` as a complex array (noiseless contribution)."""
        return self.h * np.asarray(bits, dtype=float)


def near_far_spread_db(channels: Sequence[complex]) -> float:
    """Power spread (dB) between the strongest and weakest tag in a draw."""
    mags = np.abs(np.asarray(channels, dtype=complex))
    if mags.size == 0:
        raise ValueError("need at least one channel")
    if np.any(mags <= 0):
        raise ValueError("channel magnitudes must be positive")
    return float(power_to_db(mags.max() ** 2 / mags.min() ** 2))


@dataclass
class ChannelModel:
    """Sampler of per-tag single-tap channels for a deployment.

    Parameters
    ----------
    mean_snr_db:
        Average per-tag SNR (power dB) when the tag sits at the reference
        distance. Together with ``noise_std`` this pins the absolute scale.
    near_far_db:
        Peak-to-peak near-far *power* spread across tags, realised through a
        log-uniform distance draw. 0 disables the near-far effect.
    rician_k_db:
        Rician K-factor of small-scale fading (power ratio of the fixed LoS
        component to the scattered component). Large K ≈ deterministic
        channel; ``-inf``-like small values approach Rayleigh. The paper's
        bench-top links are strongly line-of-sight, so the default is 10 dB.
    noise_std:
        Std of the complex AWGN at the reader (per complex dimension the
        std is ``noise_std / sqrt(2)``).
    """

    mean_snr_db: float = 20.0
    near_far_db: float = 12.0
    rician_k_db: float = 10.0
    noise_std: float = 1.0
    path_loss_exponent: float = 2.0
    _mean_gain: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        ensure_positive(self.noise_std, "noise_std")
        if self.near_far_db < 0:
            raise ValueError("near_far_db must be >= 0")
        # Amplitude such that a tag at the centre of the near-far range sits
        # at mean_snr_db above the noise floor.
        self._mean_gain = float(np.sqrt(db_to_power(self.mean_snr_db)) * self.noise_std)

    def sample(self, n_tags: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n_tags`` complex channel coefficients.

        The amplitude of tag *i* is the mean gain scaled by a log-uniform
        factor spanning ``near_far_db`` of power, then perturbed by Rician
        fading; the phase of the LoS component is uniform.
        """
        ensure_positive_int(n_tags, "n_tags")
        # Near-far: log-uniform power offsets in [-near_far_db/2, +near_far_db/2].
        offsets_db = rng.uniform(-self.near_far_db / 2.0, self.near_far_db / 2.0, size=n_tags)
        amplitudes = self._mean_gain * np.sqrt(db_to_power(offsets_db))

        # Rician fading around the LoS component.
        k_lin = float(db_to_power(self.rician_k_db))
        los_phase = rng.uniform(0.0, 2.0 * np.pi, size=n_tags)
        los = np.sqrt(k_lin / (k_lin + 1.0)) * np.exp(1j * los_phase)
        scatter = (
            rng.standard_normal(n_tags) + 1j * rng.standard_normal(n_tags)
        ) / np.sqrt(2.0 * (k_lin + 1.0))
        return amplitudes * (los + scatter)

    def sample_at_distances(
        self, distances_m: Sequence[float], rng: np.random.Generator, reference_m: float = 0.3
    ) -> np.ndarray:
        """Draw channels for tags at explicit distances (metres).

        The tag at ``reference_m`` sees ``mean_snr_db``; other distances are
        scaled by the round-trip path gain.
        """
        gains = backscatter_path_gain(distances_m, self.path_loss_exponent, reference_m)
        n = len(gains)
        k_lin = float(db_to_power(self.rician_k_db))
        los_phase = rng.uniform(0.0, 2.0 * np.pi, size=n)
        los = np.sqrt(k_lin / (k_lin + 1.0)) * np.exp(1j * los_phase)
        scatter = (rng.standard_normal(n) + 1j * rng.standard_normal(n)) / np.sqrt(
            2.0 * (k_lin + 1.0)
        )
        return self._mean_gain * gains * (los + scatter)

    def snrs_db(self, channels: Sequence[complex]) -> np.ndarray:
        """Per-tag SNRs (power dB) implied by a channel draw."""
        mags = np.abs(np.asarray(channels, dtype=complex))
        return power_to_db(mags**2 / self.noise_std**2)

    def snr_range_db(self, channels: Sequence[complex]) -> Tuple[float, float]:
        """(min, max) per-tag SNR of a draw — the paper's Fig. 12 x-axis."""
        snrs = self.snrs_db(channels)
        return float(snrs.min()), float(snrs.max())


@dataclass(frozen=True)
class MobilityModel:
    """Time-varying deployment statistics: block-fading drift plus churn.

    The static :class:`ChannelModel` draws one coefficient per tag and
    holds it for the whole session — the paper's §9 bench. Warehouse and
    supply-chain deployments are mobile: tags ride conveyors and carts, so
    channels drift *during* a session and tags enter or leave the read
    field mid-way. This model pins both effects with a handful of rates;
    :class:`ChannelTrajectory` realises one draw of them.

    Attributes
    ----------
    drift_rate_hz:
        Channel decorrelation rate (1/s) of the Gauss–Markov block-fading
        process: two samples ``t`` seconds apart correlate as
        ``exp(-drift_rate_hz · t)``. 0 disables drift.
    coherence_s:
        Block length of the block-fading process — the channel is constant
        within a block and steps across block boundaries.
    departure_rate_hz:
        Per-tag Poisson rate of leaving the field (1/s); a departed tag
        stops reflecting for good (total fade). 0 disables departures.
    late_arrival_fraction:
        Fraction of tags not yet in the field when the session starts;
        they arrive uniformly within ``arrival_window_s`` and stay silent
        until identified.
    arrival_window_s:
        Width of the late-arrival window (seconds).
    """

    drift_rate_hz: float = 0.0
    coherence_s: float = 0.01
    departure_rate_hz: float = 0.0
    late_arrival_fraction: float = 0.0
    arrival_window_s: float = 0.5

    def __post_init__(self) -> None:
        ensure_positive(self.coherence_s, "coherence_s")
        ensure_positive(self.arrival_window_s, "arrival_window_s")
        if self.drift_rate_hz < 0:
            raise ValueError("drift_rate_hz must be >= 0")
        if self.departure_rate_hz < 0:
            raise ValueError("departure_rate_hz must be >= 0")
        if not 0.0 <= self.late_arrival_fraction <= 1.0:
            raise ValueError("late_arrival_fraction must be in [0, 1]")

    @property
    def is_static(self) -> bool:
        """True when every rate is zero — the model degenerates to static."""
        return (
            self.drift_rate_hz == 0.0
            and self.departure_rate_hz == 0.0
            and self.late_arrival_fraction == 0.0
        )


class ChannelTrajectory:
    """One realisation of a :class:`MobilityModel` over a tag population.

    Arrival/departure times are drawn up front; fading blocks are extended
    lazily (and cached) as later times are queried, each block one
    Gauss–Markov step from the previous:

    ``h[b] = ρ·h[b−1] + √(1−ρ²)·σ_i·CN(0, 1)``, ``ρ = exp(−drift·T_block)``

    with ``σ_i = |h_i(0)|`` so each tag keeps its mean reflection power
    (the tag moves *within* its range class; gross range changes are
    churn's job). All draws come from the dedicated ``rng`` handed in, so a
    trajectory is a pure function of ``(base_channels, model, seed)`` —
    the campaign engine's determinism contract extends to mobile cells.

    Parameters
    ----------
    base_channels:
        The population's channel draw at ``t = 0``.
    model:
        The rates to realise.
    rng:
        Dedicated generator (do not share it with the PHY noise stream).
    arrivals / departures:
        Explicit per-tag schedules override the random draw — the
        failure-injection hook (e.g. "tag 0 fades at t = 4 ms").
    """

    def __init__(
        self,
        base_channels: Sequence[complex],
        model: MobilityModel,
        rng: np.random.Generator,
        arrivals: Optional[Sequence[float]] = None,
        departures: Optional[Sequence[float]] = None,
    ):
        self.base = np.asarray(base_channels, dtype=complex).ravel().copy()
        self.model = model
        self._rng = rng
        n = self.base.size
        if arrivals is None:
            late = rng.random(n) < model.late_arrival_fraction
            arrivals = np.where(
                late, rng.uniform(0.0, model.arrival_window_s, size=n), 0.0
            )
        self.arrivals = np.asarray(arrivals, dtype=float).ravel().copy()
        if self.arrivals.size != n:
            raise ValueError("arrivals must have one entry per tag")
        if departures is None:
            if model.departure_rate_hz > 0.0:
                departures = self.arrivals + rng.exponential(
                    1.0 / model.departure_rate_hz, size=n
                )
            else:
                departures = np.full(n, np.inf)
        self.departures = np.asarray(departures, dtype=float).ravel().copy()
        if self.departures.size != n:
            raise ValueError("departures must have one entry per tag")
        self._rho = float(np.exp(-model.drift_rate_hz * model.coherence_s))
        self._sigma = np.abs(self.base)
        self._blocks: list = [self.base.copy()]

    def __len__(self) -> int:
        return int(self.base.size)

    def _extend_to(self, block: int) -> None:
        while len(self._blocks) <= block:
            prev = self._blocks[-1]
            if self.model.drift_rate_hz == 0.0:
                self._blocks.append(prev)
                continue
            n = self.base.size
            innovation = (
                self._rng.standard_normal(n) + 1j * self._rng.standard_normal(n)
            ) / np.sqrt(2.0)
            step = self._rho * prev + np.sqrt(1.0 - self._rho**2) * self._sigma * innovation
            self._blocks.append(step)

    def block_index(self, t_s: float) -> int:
        """Fading-block index containing time ``t_s``."""
        if t_s < 0:
            raise ValueError("time must be >= 0")
        return int(t_s / self.model.coherence_s)

    def channels_at(self, t_s: float) -> np.ndarray:
        """Per-tag channel coefficients during the block containing ``t_s``."""
        block = self.block_index(t_s)
        self._extend_to(block)
        return self._blocks[block]

    def active_at(self, t_s: float) -> np.ndarray:
        """Boolean mask of tags physically in the field at ``t_s``."""
        return (self.arrivals <= t_s) & (t_s < self.departures)

    def correlation(self, t_s: float) -> float:
        """Expected correlation between ``h(0)`` and ``h(t_s)`` under drift."""
        if t_s < 0:
            raise ValueError("time must be >= 0")
        return float(self._rho ** self.block_index(t_s))


@dataclass(frozen=True)
class MultiReaderModel:
    """Deployment statistics of a multi-reader field (portals, floors).

    Readers sit on a ring; every tag has a *home* reader (the zone it
    occupies, and the only session it participates in) and, with
    probability ``overlap_fraction``, also lies in the overlap region
    shared with the next reader on the ring — where its reflections reach
    both readers and reader-to-reader interference happens. Mobility
    between zones is a per-tag Poisson handoff process: each event moves
    the tag to the next reader on the ring (conveyor/portal flow), and
    :class:`ZoneTrajectory` realises one draw of it.

    Attributes
    ----------
    n_readers:
        Number of concurrently interrogating readers (R).
    collision_mode:
        One of :data:`COLLISION_MODES` — how a reader resolves slots that
        temporally overlap a foreign reflection from its zone.
    overlap_fraction:
        Probability that a tag sits in the overlap between its home zone
        and the next; 0 makes the zones disjoint (no interference at all).
    cross_gain_db:
        Power attenuation of an overlap tag's reflection at the *non-home*
        reader relative to its in-zone gain (≤ 0 dB: the foreign reader is
        further away).
    capture_margin_db:
        Power advantage the desired aggregate needs over the interference
        for the ``"capture"`` mode to keep the slot clean.
    handoff_rate_hz:
        Per-tag Poisson rate (1/s) of moving to the next zone; 0 pins
        every tag to its initial home.
    cadence_spread:
        Fractional spread of the readers' slot periods: reader *r* runs
        its schedule at ``slot_s · (1 + cadence_spread · r / R)``, so the
        readers are genuinely asynchronous rather than slot-locked.
    """

    n_readers: int = 2
    collision_mode: str = "naive"
    overlap_fraction: float = 0.3
    cross_gain_db: float = -6.0
    capture_margin_db: float = 6.0
    handoff_rate_hz: float = 0.0
    cadence_spread: float = 0.1

    def __post_init__(self) -> None:
        ensure_positive_int(self.n_readers, "n_readers")
        if self.collision_mode not in COLLISION_MODES:
            raise ValueError(
                f"collision_mode must be one of {COLLISION_MODES}, "
                f"got {self.collision_mode!r}"
            )
        if not 0.0 <= self.overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in [0, 1]")
        if self.cross_gain_db > 0.0:
            raise ValueError("cross_gain_db must be <= 0 (an attenuation)")
        if self.handoff_rate_hz < 0:
            raise ValueError("handoff_rate_hz must be >= 0")
        if self.cadence_spread < 0:
            raise ValueError("cadence_spread must be >= 0")

    @property
    def cross_gain_amplitude(self) -> float:
        """Amplitude factor the overlap leakage applies (from power dB)."""
        return float(np.sqrt(db_to_power(self.cross_gain_db)))


class ZoneTrajectory:
    """One realisation of zone membership over time for a tag population.

    The companion of :class:`ChannelTrajectory` on the *spatial* axis:
    where that class answers "what is tag *i*'s channel at time *t*",
    this one answers "which reader's zone does tag *i* occupy at *t*, and
    which readers can hear it". Handoff times are drawn up front (per tag,
    Poisson at ``model.handoff_rate_hz`` over ``[0, horizon_s)``), each
    event advancing the tag to the next reader on the ring, so membership
    is a pure function of ``(n_tags, model, seed)`` — the campaign
    engine's determinism contract extends to multi-reader cells. Overlap
    flags are drawn once per tag and travel with it: an overlap tag is
    always also covered by the zone *after* its current home.

    Parameters
    ----------
    n_tags:
        Population size.
    model:
        The deployment statistics to realise.
    rng:
        Dedicated generator (do not share it with the PHY noise stream).
    horizon_s:
        Time span over which handoff events are materialised; queries past
        it see no further handoffs. Callers size it from their slot
        budget.
    """

    def __init__(
        self,
        n_tags: int,
        model: MultiReaderModel,
        rng: np.random.Generator,
        horizon_s: float = 1.0,
    ):
        ensure_positive_int(n_tags, "n_tags")
        ensure_positive(horizon_s, "horizon_s")
        self.model = model
        self.horizon_s = float(horizon_s)
        r = model.n_readers
        # Round-robin initial assignment keeps zones balanced at every
        # population size; the rng-drawn offset decorrelates which tags
        # share a zone across locations.
        offset = int(rng.integers(0, r)) if r > 1 else 0
        self.home0 = (np.arange(n_tags) + offset) % r
        self.overlap = (
            rng.random(n_tags) < model.overlap_fraction
            if r > 1
            else np.zeros(n_tags, dtype=bool)
        )
        self._handoffs: list = []
        for _ in range(n_tags):
            times: list = []
            if r > 1 and model.handoff_rate_hz > 0.0:
                t = float(rng.exponential(1.0 / model.handoff_rate_hz))
                while t < self.horizon_s:
                    times.append(t)
                    t += float(rng.exponential(1.0 / model.handoff_rate_hz))
            self._handoffs.append(np.asarray(times, dtype=float))

    def __len__(self) -> int:
        return int(self.home0.size)

    @property
    def n_readers(self) -> int:
        return self.model.n_readers

    def home_at(self, t_s: float) -> np.ndarray:
        """Per-tag home-reader index at time ``t_s``."""
        if t_s < 0:
            raise ValueError("time must be >= 0")
        hops = np.array(
            [np.searchsorted(h, t_s, side="right") for h in self._handoffs],
            dtype=int,
        )
        return (self.home0 + hops) % self.n_readers

    def coverage_at(self, t_s: float) -> np.ndarray:
        """Boolean ``(n_readers, n_tags)`` zone-coverage matrix at ``t_s``.

        Row *r* marks the tags whose reflections reader *r* receives: its
        own zone's tags plus the overlap tags of the previous zone on the
        ring. Exactly the condition under which two readers' interrogation
        zones both cover a reflecting tag — the interference predicate.
        """
        home = self.home_at(t_s)
        cover = np.zeros((self.n_readers, len(self)), dtype=bool)
        cover[home, np.arange(len(self))] = True
        if self.n_readers > 1:
            second = (home + 1) % self.n_readers
            idx = np.flatnonzero(self.overlap)
            cover[second[idx], idx] = True
        return cover

    def handoff_count(self, t_s: float) -> int:
        """Total handoff events realised up to ``t_s`` (diagnostics)."""
        return int(
            sum(np.searchsorted(h, t_s, side="right") for h in self._handoffs)
        )


def channels_for_snr_band(
    n_tags: int,
    snr_low_db: float,
    snr_high_db: float,
    rng: np.random.Generator,
    noise_std: float = 1.0,
) -> np.ndarray:
    """Draw channels whose per-tag SNRs are uniform in a target dB band.

    Used by the Fig. 12 challenging-channel sweep, where the paper reports
    results per observed SNR range rather than per distance.
    """
    ensure_positive_int(n_tags, "n_tags")
    if snr_high_db < snr_low_db:
        raise ValueError("snr_high_db must be >= snr_low_db")
    snrs_db = rng.uniform(snr_low_db, snr_high_db, size=n_tags)
    amplitudes = np.sqrt(db_to_power(snrs_db)) * noise_std
    phases = rng.uniform(0.0, 2.0 * np.pi, size=n_tags)
    return amplitudes * np.exp(1j * phases)
