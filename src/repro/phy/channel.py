"""Single-tap channel models for backscatter links.

The paper (§2, Eq. 3) models each tag's channel as one complex number
``h_i``; the magnitude is set by the *round-trip* backscatter path loss
(reader → tag → reader) and the phase by geometry. Tags at different
distances therefore present very different amplitudes at the reader — the
**near-far effect** §6(d) discusses.

:class:`ChannelModel` is the experiment-facing sampler: it draws a vector of
per-tag coefficients from a distance distribution plus Rician small-scale
fading, and reports the implied per-tag SNRs for a given noise floor.
:class:`SingleTapChannel` is the tiny value object the decoders consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.units import db_to_power, power_to_db
from repro.utils.validation import ensure_positive, ensure_positive_int

__all__ = [
    "SingleTapChannel",
    "ChannelModel",
    "backscatter_path_gain",
    "near_far_spread_db",
]


def backscatter_path_gain(distance_m, exponent: float = 2.0, reference_m: float = 0.3) -> np.ndarray:
    """Amplitude gain of the round-trip backscatter path at ``distance_m``.

    Free-space power falls as ``d^-2`` per direction, so the round-trip
    backscatter *power* falls as ``d^-4`` and the *amplitude* as ``d^-2``
    (``exponent = 2``). ``reference_m`` is the distance at which the gain is
    1.0; the paper's testbed spans 0.15–1.8 m (0.5–6 ft).
    """
    ensure_positive(exponent, "exponent")
    ensure_positive(reference_m, "reference_m")
    d = np.asarray(distance_m, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distances must be strictly positive")
    return (reference_m / d) ** exponent


@dataclass(frozen=True)
class SingleTapChannel:
    """One tag's channel: a single complex coefficient.

    Attributes
    ----------
    h:
        Complex channel coefficient multiplying the tag's ON-OFF bit.
    """

    h: complex

    @property
    def magnitude(self) -> float:
        """|h| — the received amplitude of the tag's reflection."""
        return abs(self.h)

    @property
    def phase(self) -> float:
        """Phase of ``h`` in radians."""
        return float(np.angle(self.h))

    def snr_db(self, noise_std: float) -> float:
        """Per-tag SNR in dB against complex noise of std ``noise_std``."""
        ensure_positive(noise_std, "noise_std")
        return float(power_to_db(self.magnitude**2 / noise_std**2))

    def apply(self, bits: np.ndarray) -> np.ndarray:
        """Return ``h · bits`` as a complex array (noiseless contribution)."""
        return self.h * np.asarray(bits, dtype=float)


def near_far_spread_db(channels: Sequence[complex]) -> float:
    """Power spread (dB) between the strongest and weakest tag in a draw."""
    mags = np.abs(np.asarray(channels, dtype=complex))
    if mags.size == 0:
        raise ValueError("need at least one channel")
    if np.any(mags <= 0):
        raise ValueError("channel magnitudes must be positive")
    return float(power_to_db(mags.max() ** 2 / mags.min() ** 2))


@dataclass
class ChannelModel:
    """Sampler of per-tag single-tap channels for a deployment.

    Parameters
    ----------
    mean_snr_db:
        Average per-tag SNR (power dB) when the tag sits at the reference
        distance. Together with ``noise_std`` this pins the absolute scale.
    near_far_db:
        Peak-to-peak near-far *power* spread across tags, realised through a
        log-uniform distance draw. 0 disables the near-far effect.
    rician_k_db:
        Rician K-factor of small-scale fading (power ratio of the fixed LoS
        component to the scattered component). Large K ≈ deterministic
        channel; ``-inf``-like small values approach Rayleigh. The paper's
        bench-top links are strongly line-of-sight, so the default is 10 dB.
    noise_std:
        Std of the complex AWGN at the reader (per complex dimension the
        std is ``noise_std / sqrt(2)``).
    """

    mean_snr_db: float = 20.0
    near_far_db: float = 12.0
    rician_k_db: float = 10.0
    noise_std: float = 1.0
    path_loss_exponent: float = 2.0
    _mean_gain: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        ensure_positive(self.noise_std, "noise_std")
        if self.near_far_db < 0:
            raise ValueError("near_far_db must be >= 0")
        # Amplitude such that a tag at the centre of the near-far range sits
        # at mean_snr_db above the noise floor.
        self._mean_gain = float(np.sqrt(db_to_power(self.mean_snr_db)) * self.noise_std)

    def sample(self, n_tags: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n_tags`` complex channel coefficients.

        The amplitude of tag *i* is the mean gain scaled by a log-uniform
        factor spanning ``near_far_db`` of power, then perturbed by Rician
        fading; the phase of the LoS component is uniform.
        """
        ensure_positive_int(n_tags, "n_tags")
        # Near-far: log-uniform power offsets in [-near_far_db/2, +near_far_db/2].
        offsets_db = rng.uniform(-self.near_far_db / 2.0, self.near_far_db / 2.0, size=n_tags)
        amplitudes = self._mean_gain * np.sqrt(db_to_power(offsets_db))

        # Rician fading around the LoS component.
        k_lin = float(db_to_power(self.rician_k_db))
        los_phase = rng.uniform(0.0, 2.0 * np.pi, size=n_tags)
        los = np.sqrt(k_lin / (k_lin + 1.0)) * np.exp(1j * los_phase)
        scatter = (
            rng.standard_normal(n_tags) + 1j * rng.standard_normal(n_tags)
        ) / np.sqrt(2.0 * (k_lin + 1.0))
        return amplitudes * (los + scatter)

    def sample_at_distances(
        self, distances_m: Sequence[float], rng: np.random.Generator, reference_m: float = 0.3
    ) -> np.ndarray:
        """Draw channels for tags at explicit distances (metres).

        The tag at ``reference_m`` sees ``mean_snr_db``; other distances are
        scaled by the round-trip path gain.
        """
        gains = backscatter_path_gain(distances_m, self.path_loss_exponent, reference_m)
        n = len(gains)
        k_lin = float(db_to_power(self.rician_k_db))
        los_phase = rng.uniform(0.0, 2.0 * np.pi, size=n)
        los = np.sqrt(k_lin / (k_lin + 1.0)) * np.exp(1j * los_phase)
        scatter = (rng.standard_normal(n) + 1j * rng.standard_normal(n)) / np.sqrt(
            2.0 * (k_lin + 1.0)
        )
        return self._mean_gain * gains * (los + scatter)

    def snrs_db(self, channels: Sequence[complex]) -> np.ndarray:
        """Per-tag SNRs (power dB) implied by a channel draw."""
        mags = np.abs(np.asarray(channels, dtype=complex))
        return power_to_db(mags**2 / self.noise_std**2)

    def snr_range_db(self, channels: Sequence[complex]) -> Tuple[float, float]:
        """(min, max) per-tag SNR of a draw — the paper's Fig. 12 x-axis."""
        snrs = self.snrs_db(channels)
        return float(snrs.min()), float(snrs.max())


def channels_for_snr_band(
    n_tags: int,
    snr_low_db: float,
    snr_high_db: float,
    rng: np.random.Generator,
    noise_std: float = 1.0,
) -> np.ndarray:
    """Draw channels whose per-tag SNRs are uniform in a target dB band.

    Used by the Fig. 12 challenging-channel sweep, where the paper reports
    results per observed SNR range rather than per distance.
    """
    ensure_positive_int(n_tags, "n_tags")
    if snr_high_db < snr_low_db:
        raise ValueError("snr_high_db must be >= snr_low_db")
    snrs_db = rng.uniform(snr_low_db, snr_high_db, size=n_tags)
    amplitudes = np.sqrt(db_to_power(snrs_db)) * noise_std
    phases = rng.uniform(0.0, 2.0 * np.pi, size=n_tags)
    return amplitudes * np.exp(1j * phases)
