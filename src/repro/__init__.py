"""repro — a signal-level reproduction of Buzz (SIGCOMM 2012).

Wang, Hassanieh, Katabi, Indyk: *Efficient and Reliable Low-Power
Backscatter Networks*. The package implements the paper's two protocols —
compressive-sensing node identification and distributed rateless rate
adaptation — together with every substrate they stand on (backscatter PHY,
EPC Gen-2 link layer, sparse-recovery solvers, TDMA/CDMA baselines) and an
experiment harness that regenerates each figure and table of the paper's
evaluation.

Entry points:

>>> from repro.core import BuzzSystem
>>> from repro.network.scenarios import default_uplink_scenario
>>> from repro.nodes import ReaderFrontEnd

See README.md for a tour and DESIGN.md / EXPERIMENTS.md for the
reproduction methodology and measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
