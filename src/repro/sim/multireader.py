"""Reader actors: concurrent rateless sessions over one shared tag field.

The single-reader drivers in :mod:`repro.core` advance one slot counter;
here R readers free-run, each at its own cadence, each inventorying its
own zone and driving its own :class:`~repro.core.rateless.RatelessDecoder`
over the tags currently homed there. The pieces:

* **Zone membership** comes from a :class:`~repro.phy.channel.
  ZoneTrajectory` realised once per run — homes, overlap flags and Poisson
  handoff times are a pure function of the run's generator, so the whole
  simulation stays a pure function of its seed (the campaign engine's
  backend-identity contract).
* **Sessions**: a reader inventories its zone (tags homed there and not
  yet delivered anywhere), pays the Gen-2 query overhead, draws fresh
  session-local temporary ids, and collects collision slots at its own
  period until the batch decodes, the slot cap hits, or every undecoded
  member has left or been delivered elsewhere. An empty inventory idles
  one poll period and retries. Delivery is global and first-writer-wins:
  once any reader verifies a tag's CRC, every other reader drops it from
  future inventories.
* **Interference** uses a two-event slot protocol. At slot *start* the
  reader draws the received symbols, posts a :class:`~repro.sim.
  interference.TransmissionRecord` advertising the power its transmitting
  tags leak into every other zone, and schedules the slot *end*. At slot
  end it sums the foreign records that temporally overlap its receive
  window and lets :func:`~repro.sim.interference.resolve_slot` decide:
  drop the slot, feed it clean, or feed it with the foreign power added
  as Gaussian noise. Dropped slots still cost airtime and budget — the
  slot index is skipped, which the decoder's regenerate-by-index path
  handles natively.
* **The genie row discipline** matches :mod:`repro.core.mobile`: the
  decoder regenerates the full member coin row for each slot index while
  the air side only carries tags the reader still covers — a member that
  handed off mid-session leaves a residual in every row it was scheduled
  into, exactly mobility's failure surface.

All noise, inventory and id draws happen inside event callbacks of a
deterministically-ordered :class:`~repro.sim.scheduler.EventScheduler`,
so a single shared generator yields identical streams on every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.coding.crc import CRC5_GEN2, CrcSpec
from repro.coding.prng import slot_decision_matrix
from repro.core.config import BuzzConfig
from repro.core.rateless import RatelessDecoder
from repro.gen2.timing import GEN2_DEFAULT_TIMING, LinkTiming
from repro.nodes.population import TagPopulation
from repro.nodes.reader import ReaderFrontEnd
from repro.nodes.tag import SALT_DATA
from repro.phy.channel import MultiReaderModel, ZoneTrajectory
from repro.sim.interference import TransmissionRecord, resolve_slot
from repro.sim.scheduler import EventScheduler
from repro.utils.units import db_to_power

__all__ = ["MultiReaderOutcome", "simulate_multi_reader"]


@dataclass
class MultiReaderOutcome:
    """Roll-up of one multi-reader run over the whole field.

    Attributes
    ----------
    delivered:
        Per-tag flag: some reader verified this tag's CRC.
    messages:
        ``(K, P)`` recovered messages (zeros where undelivered).
    total_slots:
        Collision slots collected across all readers (kept + dropped) —
        the denominator of the aggregate rate.
    duration_s:
        Makespan: the latest instant any reader was actively querying or
        receiving (idle re-polls after the field drains do not count).
    transmissions:
        Per-tag count of slots the tag actually reflected in.
    sessions:
        Inventory rounds opened (non-empty only).
    dropped_slots / degraded_slots:
        Slots lost to reader collisions / fed with interference noise.
    handoffs:
        Zone-handoff events realised within the makespan.
    per_reader_slots:
        Slots each reader collected (length R).
    """

    delivered: np.ndarray
    messages: np.ndarray
    total_slots: int
    duration_s: float
    transmissions: np.ndarray
    sessions: int
    dropped_slots: int
    degraded_slots: int
    handoffs: int
    per_reader_slots: np.ndarray


@dataclass
class _Simulation:
    """Shared world state every reader actor reads and writes."""

    population: TagPopulation
    front_end: ReaderFrontEnd
    rng: np.random.Generator
    config: BuzzConfig
    timing: LinkTiming
    crc: Optional[CrcSpec]
    model: MultiReaderModel
    zones: ZoneTrajectory
    messages: np.ndarray
    channels: np.ndarray
    slot_s: float
    budget: int
    id_space: int
    delivered: np.ndarray = field(init=False)
    recovered: np.ndarray = field(init=False)
    transmissions: np.ndarray = field(init=False)
    records: List[TransmissionRecord] = field(default_factory=list)
    total_slots: int = 0
    dropped_slots: int = 0
    degraded_slots: int = 0
    sessions: int = 0
    makespan: float = 0.0
    per_reader_slots: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        k = len(self.population)
        self.delivered = np.zeros(k, dtype=bool)
        self.recovered = np.zeros_like(self.messages)
        self.transmissions = np.zeros(k, dtype=int)
        self.per_reader_slots = np.zeros(self.model.n_readers, dtype=int)

    @property
    def finished(self) -> bool:
        return bool(self.delivered.all()) or self.budget <= 0

    def post(self, record: TransmissionRecord) -> None:
        self.records.append(record)

    def interference_at(self, reader: int, start_s: float, end_s: float) -> float:
        """Aggregate foreign power overlapping ``[start_s, end_s)``."""
        return float(
            sum(
                rec.power_at[reader]
                for rec in self.records
                if rec.reader != reader and rec.overlaps(start_s, end_s)
            )
        )

    def prune_records(self, before_s: float) -> None:
        """Drop records that can no longer overlap any future window."""
        if len(self.records) > 4 * self.model.n_readers:
            self.records = [r for r in self.records if r.end_s > before_s]

    def deliver(self, tag: int, message: np.ndarray) -> bool:
        """First-writer-wins global delivery; True if this call won."""
        if self.delivered[tag]:
            return False
        self.delivered[tag] = True
        self.recovered[tag] = message
        return True


class _ReaderActor:
    """One reader: inventory → session slots → decode → repeat.

    The actor is a small state machine driven entirely by scheduler
    callbacks; between events its state is the open session (members,
    decoder, slot index) or nothing.
    """

    def __init__(self, index: int, sim: _Simulation):
        self.index = index
        self.sim = sim
        r = sim.model.n_readers
        # Distinct periods keep the readers genuinely asynchronous; the
        # slot airtime itself is the common PHY constant.
        self.period = sim.slot_s * (1.0 + sim.model.cadence_spread * index / r)
        self.capture_margin = float(db_to_power(sim.model.capture_margin_db))
        self._clear_session()

    def _clear_session(self) -> None:
        self.members = np.zeros(0, dtype=int)
        self.seeds: List[int] = []
        self.decoder: Optional[RatelessDecoder] = None
        self.slot_index = 0
        self.fed_slots = 0
        self.decoded_local = np.zeros(0, dtype=bool)

    # ---- session lifecycle -----------------------------------------------------

    def start_session(self, sched: EventScheduler) -> None:
        sim = self.sim
        if sim.finished:
            return
        now = sched.now
        home = sim.zones.home_at(now)
        members = np.flatnonzero((home == self.index) & ~sim.delivered)
        query_s = sim.timing.query_duration_s()
        if members.size == 0:
            # Nobody answered the query: idle one period and re-poll. The
            # query airtime is real but the field may already be drained
            # elsewhere, so it does not extend the makespan.
            sched.at(now + query_s + self.period, self.start_session)
            return
        sim.sessions += 1
        sim.makespan = max(sim.makespan, now + query_s)
        self.members = members
        k_hat = int(members.size)
        # Fresh session-local temporary ids: a new inventory round
        # re-randomises every tag's schedule, so a retry session never
        # replays the coin rows a failed one already spent.
        self.seeds = [
            int(s) for s in sim.rng.choice(sim.id_space, size=k_hat, replace=False)
        ]
        self.decoder = RatelessDecoder(
            seeds=self.seeds,
            channels=sim.channels[members],
            n_positions=sim.messages.shape[1],
            density=sim.config.data_density(k_hat),
            crc=sim.crc,
            config=sim.config,
            rng=np.random.default_rng(sim.rng.integers(0, 2**63)),
            noise_std=sim.front_end.noise_std,
        )
        self.slot_index = 0
        self.fed_slots = 0
        self.session_limit = sim.config.max_data_slots(k_hat)
        self.decoded_local = np.zeros(k_hat, dtype=bool)
        sched.at(now + query_s, self.slot_start)

    def _end_session(self, sched: EventScheduler) -> None:
        decoder = self.decoder
        if decoder is not None and decoder.slots_collected and (
            self.fed_slots % self.sim.config.decode_every != 0
        ):
            self._absorb_decode(decoder)
        self._clear_session()
        self.start_session(sched)

    def _session_exhausted(self, now_s: float) -> bool:
        """True when no undecoded member is still worth slots."""
        pending = self.members[~self.decoded_local]
        if pending.size == 0:
            return True
        still_mine = self.sim.zones.home_at(now_s)[pending] == self.index
        return bool(np.all(self.sim.delivered[pending] | ~still_mine))

    # ---- the two-event slot protocol -------------------------------------------

    def slot_start(self, sched: EventScheduler) -> None:
        sim = self.sim
        if sim.budget <= 0 or self._session_exhausted(sched.now):
            self._end_session(sched)
            return
        t0 = sched.now
        t1 = t0 + sim.slot_s
        j = self.slot_index
        self.slot_index += 1
        sim.budget -= 1
        sim.total_slots += 1
        sim.per_reader_slots[self.index] += 1
        sim.makespan = max(sim.makespan, t1)

        # Tag-side coin draw for this slot — the same pure function of
        # (temp id, slot index) the decoder will regenerate.
        row = slot_decision_matrix(
            self.seeds, range(j, j + 1), float(self.decoder.density), salt=SALT_DATA
        )[0]
        coverage = sim.zones.coverage_at(t0)
        covered_here = coverage[self.index, self.members]
        air_row = row * covered_here.astype(np.uint8)
        sim.transmissions[self.members] += row

        tx = (sim.messages[self.members] * air_row[:, None]).T  # (P, k_hat)
        symbols = sim.front_end.observe(tx, sim.channels[self.members], sim.rng)

        # Advertise what this slot leaks into every other zone: the
        # transmitting tags each foreign reader covers, at cross-zone gain.
        transmitting = self.members[row.astype(bool)]
        power_at = np.zeros(sim.model.n_readers)
        if transmitting.size:
            gains = np.abs(sim.channels[transmitting]) ** 2
            cross = db_to_power(sim.model.cross_gain_db)
            for q in range(sim.model.n_readers):
                if q == self.index:
                    continue
                heard = coverage[q, transmitting]
                if heard.any():
                    power_at[q] = cross * float(gains[heard].sum())
        sim.post(TransmissionRecord(self.index, t0, t1, power_at))

        on_air = self.members[air_row.astype(bool)]
        signal_power = float((np.abs(sim.channels[on_air]) ** 2).sum())
        self._pending = (j, t0, t1, symbols, signal_power)
        sched.at(t1, self.slot_end)

    def slot_end(self, sched: EventScheduler) -> None:
        sim = self.sim
        j, t0, t1, symbols, signal_power = self._pending
        foreign = sim.interference_at(self.index, t0, t1)
        verdict = resolve_slot(
            sim.model.collision_mode, signal_power, foreign, self.capture_margin
        )
        decoder = self.decoder
        if not verdict.kept:
            sim.dropped_slots += 1
        else:
            if verdict.noise_power > 0.0:
                sim.degraded_slots += 1
                scale = np.sqrt(verdict.noise_power / 2.0)
                symbols = symbols + scale * (
                    sim.rng.standard_normal(symbols.size)
                    + 1j * sim.rng.standard_normal(symbols.size)
                )
            decoder.add_slot(symbols, slot=j)
            self.fed_slots += 1
            if self.fed_slots % sim.config.decode_every == 0:
                self._absorb_decode(decoder)
        # Every open receive window ends at or after now and spans one slot
        # airtime, so records ending earlier than now − slot_s are inert.
        sim.prune_records(t1 - sim.slot_s)

        if (
            decoder.all_decoded
            or self.slot_index >= self.session_limit
            or sim.budget <= 0
            or self._session_exhausted(t1)
        ):
            self._end_session(sched)
            return
        # Next slot starts one reader-period after this one's start; the
        # period exceeds the slot airtime, so windows never self-overlap.
        sched.at(t0 + self.period, self.slot_start)

    def _absorb_decode(self, decoder: RatelessDecoder) -> None:
        progress = decoder.try_decode()
        if not progress.newly_decoded:
            return
        mask = decoder.decoded_mask
        fresh = np.flatnonzero(mask & ~self.decoded_local)
        if fresh.size:
            estimates = decoder.messages()
            for local in fresh:
                self.sim.deliver(int(self.members[local]), estimates[local])
            self.decoded_local = mask.copy()


def simulate_multi_reader(
    population: TagPopulation,
    front_end: ReaderFrontEnd,
    rng: np.random.Generator,
    config: BuzzConfig = BuzzConfig(),
    timing: LinkTiming = GEN2_DEFAULT_TIMING,
    max_slots: Optional[int] = None,
    model: Optional[MultiReaderModel] = None,
    crc: Optional[CrcSpec] = CRC5_GEN2,
) -> MultiReaderOutcome:
    """Run R concurrent readers over one population until drained.

    ``model`` defaults to the population's attached
    :class:`~repro.phy.channel.MultiReaderModel` (or a stock two-reader
    one). ``max_slots`` caps the *global* collision-slot budget across all
    readers; by default the single-reader abort bound
    ``config.max_data_slots(K)`` is shared by the whole fleet, which makes
    the aggregate-rate denominator directly comparable with the
    single-reader schemes.
    """
    k = len(population)
    if k == 0:
        raise ValueError("need at least one tag")
    if model is None:
        model = population.readers if population.readers is not None else MultiReaderModel()
    messages = population.messages
    slot_s = messages.shape[1] / timing.uplink_rate_bps
    budget = int(max_slots) if max_slots is not None else config.max_data_slots(k)
    if budget <= 0:
        raise ValueError("slot budget must be positive")
    max_period = slot_s * (1.0 + model.cadence_spread)
    # Generous horizon: enough for every budgeted slot plus per-session
    # query overheads to run *sequentially*; concurrent readers finish
    # well inside it. Queries past it simply see no further handoffs.
    horizon = (timing.query_duration_s() + max_period) * (
        budget + 4 * model.n_readers + 4
    )
    zones = ZoneTrajectory(k, model, rng, horizon_s=horizon)
    sim = _Simulation(
        population=population,
        front_end=front_end,
        rng=rng,
        config=config,
        timing=timing,
        crc=crc,
        model=model,
        zones=zones,
        messages=messages,
        channels=population.channels,
        slot_s=slot_s,
        budget=budget,
        id_space=10 * k * k,
    )
    sched = EventScheduler()
    for r in range(model.n_readers):
        # Staggered first queries decorrelate the initial slot phases.
        sched.at(r * slot_s / model.n_readers, _ReaderActor(r, sim).start_session)
    sched.run()
    duration = sim.makespan if sim.makespan > 0.0 else timing.query_duration_s()
    return MultiReaderOutcome(
        delivered=sim.delivered,
        messages=sim.recovered,
        total_slots=sim.total_slots,
        duration_s=duration,
        transmissions=sim.transmissions,
        sessions=sim.sessions,
        dropped_slots=sim.dropped_slots,
        degraded_slots=sim.degraded_slots,
        handoffs=zones.handoff_count(duration),
        per_reader_slots=sim.per_reader_slots,
    )
