"""Monotonic event-heap scheduler — the simulator's clock.

A deliberately tiny discrete-event kernel (the pydesim ``Model`` /
``simulate`` pattern): callers schedule ``(time, callback)`` pairs,
:meth:`EventScheduler.run` pops them in time order and invokes each with
the scheduler as argument so handlers can schedule follow-up events.

Determinism is the design constraint, not throughput: events at equal
times fire in *scheduling* order (a monotonically increasing sequence
number breaks heap ties), so two runs that schedule the same events in
the same order consume any shared random generator in the same order —
which is what lets a whole multi-reader simulation remain a pure function
of its seed, and every executor backend stay byte-identical.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

__all__ = ["EventScheduler"]


class EventScheduler:
    """Priority queue of timed callbacks with a monotonic clock.

    Attributes
    ----------
    now:
        Virtual time of the event currently (or most recently) firing.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[["EventScheduler"], None]]] = []
        self._seq = 0
        self.now = 0.0
        self._events_fired = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Events processed so far (diagnostics / loop-bound sanity)."""
        return self._events_fired

    def at(self, time_s: float, callback: Callable[["EventScheduler"], None]) -> None:
        """Schedule ``callback`` at absolute time ``time_s``.

        The clock is monotonic: scheduling into the past (before the event
        currently firing) is a logic error, not a silent reorder.
        """
        if time_s < self.now:
            raise ValueError(
                f"cannot schedule into the past ({time_s:.6g} < now={self.now:.6g})"
            )
        heapq.heappush(self._heap, (float(time_s), self._seq, callback))
        self._seq += 1

    def after(
        self, delay_s: float, callback: Callable[["EventScheduler"], None]
    ) -> None:
        """Schedule ``callback`` ``delay_s`` after the current time."""
        if delay_s < 0:
            raise ValueError("delay must be >= 0")
        self.at(self.now + delay_s, callback)

    def run(self, max_events: int = 10_000_000) -> float:
        """Fire events in time order until the heap drains; return end time.

        ``max_events`` is a runaway backstop (an actor re-scheduling
        itself unconditionally would otherwise spin forever); hitting it
        raises rather than returning a silently truncated simulation.
        """
        while self._heap:
            time_s, _, callback = heapq.heappop(self._heap)
            self.now = time_s
            self._events_fired += 1
            if self._events_fired > max_events:
                raise RuntimeError(
                    f"event budget exhausted ({max_events}); "
                    "an actor is likely re-scheduling unconditionally"
                )
            callback(self)
        return self.now
