"""Discrete-event simulation core: many readers over one tag field.

Everything below :mod:`repro.core` is slot-synchronous under a single
reader — the paper's bench. Real deployments (warehouses, portals, retail
floors) run *many* readers whose interrogation zones overlap and whose
sessions free-run against each other. This package provides:

* :mod:`repro.sim.scheduler` — a monotonic event-heap scheduler with
  deterministic tie-breaking (the pydesim ``Model``/``simulate`` shape);
* :mod:`repro.sim.interference` — FADR-style reader-to-reader collision
  resolution (naive overlap / capture effect / non-orthogonal
  interference);
* :mod:`repro.sim.multireader` — reader actors driving their own rateless
  sessions at their own cadence over a shared, mobile, zone-partitioned
  tag field;
* :mod:`repro.sim.scheme` — the ``multi-reader`` :class:`~repro.engine.
  schemes.UplinkScheme` family, which rolls the simulation up into the
  standard :class:`~repro.engine.schemes.SchemeResult` so campaigns,
  caching and every executor backend work unchanged.
"""

from repro.sim.interference import resolve_slot
from repro.sim.multireader import MultiReaderOutcome, simulate_multi_reader
from repro.sim.scheduler import EventScheduler
from repro.sim.scheme import MultiReaderScheme

__all__ = [
    "EventScheduler",
    "MultiReaderOutcome",
    "MultiReaderScheme",
    "resolve_slot",
    "simulate_multi_reader",
]
