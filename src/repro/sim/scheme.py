"""The ``multi-reader`` uplink-scheme family.

Wraps :func:`~repro.sim.multireader.simulate_multi_reader` in the
:class:`~repro.engine.schemes.UplinkScheme` contract so multi-reader runs
flow through the campaign engine unchanged — same grids, same caching,
same executor backends, same :class:`~repro.engine.schemes.SchemeResult`
rows next to the single-reader schemes.

``multi-reader`` honours the collision mode the scenario's
:class:`~repro.phy.channel.MultiReaderModel` carries; the
``multi-reader-<mode>`` variants pin the mode regardless of scenario, so
one campaign can sweep all three rungs of the interference ladder over
identical deployments (the Fig. 17 experiment does exactly this).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.core.config import BuzzConfig
from repro.engine.schemes import SchemeResult, register_scheme
from repro.nodes.population import TagPopulation
from repro.nodes.reader import ReaderFrontEnd
from repro.phy.channel import COLLISION_MODES, MultiReaderModel
from repro.sim.multireader import simulate_multi_reader

__all__ = ["MultiReaderScheme"]


class MultiReaderScheme:
    """R concurrent readers draining one field, rolled up per §9's metrics.

    ``slots_used`` counts collision slots across *all* readers (kept and
    dropped — both cost airtime), so ``bits_per_symbol`` remains the
    aggregate-rate K/L directly comparable with the single-reader Buzz
    rows; ``duration_s`` is the fleet makespan, which is where concurrency
    pays.
    """

    def __init__(self, name: str = "multi-reader", collision_mode: Optional[str] = None):
        if collision_mode is not None and collision_mode not in COLLISION_MODES:
            raise ValueError(
                f"collision_mode must be one of {COLLISION_MODES}, "
                f"got {collision_mode!r}"
            )
        self.name = name
        self.collision_mode = collision_mode

    def run(
        self,
        population: TagPopulation,
        front_end: ReaderFrontEnd,
        rng: np.random.Generator,
        config: BuzzConfig,
        max_slots: Optional[int] = None,
    ) -> SchemeResult:
        model = (
            population.readers
            if population.readers is not None
            else MultiReaderModel()
        )
        if self.collision_mode is not None:
            model = replace(model, collision_mode=self.collision_mode)
        outcome = simulate_multi_reader(
            population,
            front_end,
            rng,
            config=config,
            max_slots=max_slots,
            model=model,
        )
        k = len(population)
        truth = population.messages
        return SchemeResult(
            scheme=self.name,
            duration_s=outcome.duration_s,
            message_loss=int(k - outcome.delivered.sum()),
            n_tags=k,
            bits_per_symbol=(
                k / outcome.total_slots if outcome.total_slots else 0.0
            ),
            slots_used=outcome.total_slots,
            transmissions=outcome.transmissions,
            bit_errors=int(np.sum(outcome.messages != truth)),
        )


register_scheme(MultiReaderScheme())
for _mode in COLLISION_MODES:
    register_scheme(MultiReaderScheme(name=f"multi-reader-{_mode}", collision_mode=_mode))
del _mode
