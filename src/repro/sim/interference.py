"""Reader-to-reader collision resolution — the FADR ladder.

When two readers' interrogation zones both cover a reflecting tag, one
reader's uplink slot lands inside another's receive window. How much that
costs depends on the receiver model, and the literature spans a ladder of
assumptions (FADR and its successors formalise the same three rungs for
reader scheduling):

``"naive"``
    Any temporal overlap with foreign energy destroys the slot — the
    classic colouring-problem assumption. Pessimistic, but the right
    baseline: schedulers derived from it are safe under every receiver.
``"capture"``
    The capture effect: the slot survives *clean* when the desired
    aggregate outpowers the interference by the capture margin, and is
    lost otherwise. A binary middle rung — no partial degradation.
``"interference"``
    Non-orthogonal superposition: the slot always reaches the decoder,
    carrying the foreign energy as additional Gaussian noise at the
    interference power. The rateless code was built for exactly this —
    collisions are information — so this rung measures how much of the
    reader-collision problem the code absorbs for free.

:func:`resolve_slot` is the single decision point; the simulator computes
the two powers from zone geometry and cross-zone gains and then acts on
the verdict (drop the slot, feed it, or feed it noisier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.channel import COLLISION_MODES

__all__ = ["SlotVerdict", "TransmissionRecord", "resolve_slot"]

#: Interference power below this (linear, relative to unit channel gain) is
#: treated as silence — keeps exact-zero and denormal sums on the same path.
_POWER_FLOOR = 1e-12


@dataclass(frozen=True)
class SlotVerdict:
    """Outcome of collision resolution for one receive slot.

    ``kept`` says whether the slot reaches the decoder at all;
    ``noise_power`` is the extra Gaussian noise power (linear) the receive
    carries when it does (0 for clean slots).
    """

    kept: bool
    noise_power: float

    @property
    def degraded(self) -> bool:
        return self.kept and self.noise_power > 0.0


@dataclass(frozen=True)
class TransmissionRecord:
    """One reader's slot on the air, as seen by everyone else.

    Posted at slot start and consulted by every other reader whose receive
    window overlaps ``[start_s, end_s)``. ``power_at[q]`` is the
    interference power reader *q* receives from this slot's transmitting
    tags (cross-zone gain already applied; the posting reader's own entry
    is zero).
    """

    reader: int
    start_s: float
    end_s: float
    power_at: np.ndarray

    def overlaps(self, start_s: float, end_s: float) -> bool:
        """Strict temporal overlap — touching endpoints do not interfere."""
        return self.start_s < end_s and self.end_s > start_s


def resolve_slot(
    mode: str,
    signal_power: float,
    interference_power: float,
    capture_margin_lin: float,
) -> SlotVerdict:
    """Resolve one receive slot against the aggregate foreign power.

    Parameters
    ----------
    mode:
        One of :data:`~repro.phy.channel.COLLISION_MODES`.
    signal_power:
        Aggregate power (linear) of the desired reflections this slot.
    interference_power:
        Aggregate foreign power (linear) overlapping the slot.
    capture_margin_lin:
        Linear capture margin (``"capture"`` mode only).
    """
    if mode not in COLLISION_MODES:
        raise ValueError(f"unknown collision mode {mode!r}")
    if interference_power <= _POWER_FLOOR:
        return SlotVerdict(kept=True, noise_power=0.0)
    if mode == "naive":
        return SlotVerdict(kept=False, noise_power=0.0)
    if mode == "capture":
        kept = signal_power >= capture_margin_lin * interference_power
        return SlotVerdict(kept=kept, noise_power=0.0)
    return SlotVerdict(kept=True, noise_power=float(interference_power))
