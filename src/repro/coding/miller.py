"""Miller-modulated subcarrier coding (EPC Gen-2, M ∈ {2, 4, 8}).

Gen-2's "Miller-M" uplink code multiplies a baseband Miller sequence by a
square subcarrier of M cycles per bit. Relative to FM0 it spreads each bit
over 2·M half-cycles, which:

* gives the reader a matched filter with ~M× processing gain — the
  robustness the paper's TDMA baseline relies on ("Miller-4 code is used in
  TDMA to increase its robustness", §9), and
* costs the tag ~2·M impedance switches per bit — the energy overhead that
  lets Buzz match TDMA's energy in Fig. 13 despite retransmitting.

Baseband Miller rules (levels ±1): a data-1 inverts mid-bit; a data-0 holds,
except that a 0 following a 0 inverts at the bit boundary.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.utils.bits import as_bits
from repro.utils.validation import ensure_positive_int

__all__ = ["miller_basis", "miller_encode", "miller_decode", "miller_switch_count"]

_ALLOWED_M = (2, 4, 8)


def _check_m(m: int) -> int:
    if m not in _ALLOWED_M:
        raise ValueError(f"Miller M must be one of {_ALLOWED_M}, got {m}")
    return m


def miller_basis(m: int) -> Tuple[np.ndarray, np.ndarray]:
    """Subcarrier-modulated half-cycle waveforms for (data-0, data-1).

    Each is a ±1 array of length ``2·m`` (two samples per subcarrier cycle).
    A data bit transmits one of these, possibly globally inverted to honour
    the Miller boundary/mid-bit phase rules.
    """
    _check_m(m)
    subcarrier = np.tile([1.0, -1.0], m)  # m cycles, 2 samples each
    basis0 = subcarrier.copy()  # no mid-bit phase inversion
    basis1 = subcarrier.copy()
    basis1[m:] *= -1.0  # data-1: phase inversion at bit centre
    return basis0, basis1


def miller_encode(bits: Union[Sequence[int], np.ndarray], m: int = 4) -> np.ndarray:
    """Encode bits into a Miller-M ±1 waveform (``2·m`` samples per bit)."""
    _check_m(m)
    data = as_bits(bits)
    basis0, basis1 = miller_basis(m)
    out = np.empty(2 * m * data.size, dtype=float)
    phase = 1.0
    prev_bit = None
    for i, bit in enumerate(data):
        if prev_bit == 0 and bit == 0:
            phase = -phase  # 0 after 0: boundary inversion
        chunk = (basis1 if bit else basis0) * phase
        out[2 * m * i : 2 * m * (i + 1)] = chunk
        # carry the ending polarity into the next bit so the waveform is
        # continuous across boundaries (no spurious extra transition)
        phase = float(np.sign(chunk[-1]))
        prev_bit = int(bit)
    return out


def miller_decode(waveform: np.ndarray, m: int = 4) -> np.ndarray:
    """Matched-filter decode of a Miller-M waveform back to bits.

    For each bit period the decoder correlates against both (phase-tracked)
    basis waveforms and picks the larger response. Robust to amplitude
    scaling and additive noise; this is where the M× processing gain shows.
    """
    _check_m(m)
    wave = np.asarray(waveform, dtype=float).ravel()
    samples_per_bit = 2 * m
    if wave.size % samples_per_bit:
        raise ValueError("waveform length must be a multiple of 2*m")
    n_bits = wave.size // samples_per_bit
    basis0, basis1 = miller_basis(m)
    bits = np.empty(n_bits, dtype=np.uint8)
    for i in range(n_bits):
        chunk = wave[samples_per_bit * i : samples_per_bit * (i + 1)]
        c0 = abs(float(chunk @ basis0))
        c1 = abs(float(chunk @ basis1))
        bits[i] = 1 if c1 > c0 else 0
    return bits


def miller_switch_count(bits: Union[Sequence[int], np.ndarray], m: int = 4) -> int:
    """Number of impedance switches a tag performs to send ``bits`` with Miller-M.

    Counts level transitions in the encoded waveform (including the initial
    switch into the first level). This drives the energy model of Fig. 13:
    Miller-4 switches ≈ 8× per bit vs 1× for plain OOK.
    """
    data = as_bits(bits)
    if data.size == 0:
        return 0
    wave = miller_encode(data, m)
    transitions = int(np.count_nonzero(np.diff(wave) != 0))
    return transitions + 1
