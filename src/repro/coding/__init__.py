"""Link-layer and line coding used by backscatter systems.

Contents:

* :mod:`repro.coding.crc` — EPC Gen-2 CRC-5 and CRC-16 (the paper's
  messages carry a 5-bit CRC; Gen-2 frames use CRC-16).
* :mod:`repro.coding.fm0` / :mod:`repro.coding.miller` — the Gen-2 uplink
  line codes. TDMA in the paper protects messages with Miller-4, which
  trades 8× more impedance switching for noise robustness.
* :mod:`repro.coding.walsh` — Walsh-Hadamard orthogonal codes for the
  synchronous-CDMA baseline.
* :mod:`repro.coding.prng` — the deterministic per-tag pseudorandom
  generator both the tags and the reader run (a 16-bit Galois LFSR plus a
  stateless hash-based slot-decision function), the mechanism that lets the
  reader regenerate the sensing matrix A and collision matrix D.
"""

from repro.coding.crc import (
    CRC5_GEN2,
    CRC16_GEN2,
    CrcSpec,
    crc_append,
    crc_check,
    crc_compute,
)
from repro.coding.fm0 import fm0_decode, fm0_encode
from repro.coding.miller import (
    miller_basis,
    miller_decode,
    miller_encode,
    miller_switch_count,
)
from repro.coding.prng import (
    TagLfsr,
    slot_decision,
    transmit_pattern,
    transmit_pattern_matrix,
)
from repro.coding.walsh import walsh_code_length, walsh_codes

__all__ = [
    "CRC16_GEN2",
    "CRC5_GEN2",
    "CrcSpec",
    "TagLfsr",
    "crc_append",
    "crc_check",
    "crc_compute",
    "fm0_decode",
    "fm0_encode",
    "miller_basis",
    "miller_decode",
    "miller_encode",
    "miller_switch_count",
    "slot_decision",
    "transmit_pattern",
    "transmit_pattern_matrix",
    "walsh_code_length",
    "walsh_codes",
]
