"""Per-tag pseudorandom generators shared by tags and reader.

Buzz's protocols hinge on the reader being able to *regenerate* each tag's
random decisions (§5: "the reader can generate this matrix by using the same
pseudorandom number generator used by the nodes"). Two generators are
provided:

* :class:`TagLfsr` — a 16-bit Galois LFSR of the kind Gen-2 tags already
  contain for RN16 generation. Stateful, cheap enough for an RFID tag.
* :func:`slot_decision` — a *stateless* keyed decision: a 64-bit integer
  hash of ``(seed, slot)`` compared against a probability. This mirrors the
  paper's rate-adaptation protocol where the generator is "seeded by its own
  temporary id and the current time slot" (§6a), and makes reader-side
  regeneration of any slot O(1) without replaying a stream.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import ensure_positive_int, ensure_probability

__all__ = [
    "TagLfsr",
    "slot_decision",
    "slot_decision_matrix",
    "transmit_pattern",
    "transmit_pattern_matrix",
]

#: Taps of the 16-bit Galois LFSR: x^16 + x^14 + x^13 + x^11 + 1 (maximal).
_LFSR_TAPS = 0xB400


class TagLfsr:
    """16-bit Galois LFSR — the tag-feasible PRNG of the identification phase.

    A zero seed is remapped to a fixed non-zero state (an LFSR locks up at
    zero). The sequence is deterministic in the seed, so the reader can
    regenerate any tag's transmit pattern from its id.
    """

    def __init__(self, seed: int):
        state = int(seed) & 0xFFFF
        self.state = state if state else 0xACE1
        self._initial = self.state

    def reset(self) -> None:
        """Rewind to the construction state."""
        self.state = self._initial

    def next_bit(self) -> int:
        """Advance one step and return the output bit."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= _LFSR_TAPS
        return out

    def bits(self, n: int) -> np.ndarray:
        """The next ``n`` output bits as a uint8 array."""
        ensure_positive_int(n, "n")
        return np.array([self.next_bit() for _ in range(n)], dtype=np.uint8)

    def uniform(self) -> float:
        """A uniform [0, 1) variate built from the next 16 output bits."""
        value = 0
        for _ in range(16):
            value = (value << 1) | self.next_bit()
        return value / 65536.0

    def bernoulli(self, p: float) -> int:
        """1 with probability ``p`` (16-bit resolution), else 0."""
        ensure_probability(p, "p")
        return 1 if self.uniform() < p else 0


def _mix64(x: int) -> int:
    """SplitMix64 finaliser — a high-quality stateless 64-bit mix."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


def slot_decision(seed: int, slot: int, p: float, salt: int = 0) -> int:
    """Stateless transmit decision for ``(seed, slot)`` with probability ``p``.

    Both a tag (knowing only its own seed) and the reader (knowing all
    seeds) evaluate this identically, which is what lets the reader rebuild
    the collision matrix D of Eq. 7 without any per-slot signalling.
    """
    ensure_probability(p, "p")
    h = _mix64(((int(seed) & 0xFFFFFFFF) << 32) ^ (int(slot) & 0xFFFFFFFF) ^ (int(salt) << 17))
    return 1 if (h >> 11) / float(1 << 53) < p else 0


def _mix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finaliser over a uint64 array.

    uint64 arithmetic wraps modulo 2⁶⁴, matching :func:`_mix64`'s explicit
    masking bit for bit.
    """
    with np.errstate(over="ignore"):
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def slot_decision_matrix(
    seeds: Sequence[int], slots: Iterable[int], p: float, salt: int = 0
) -> np.ndarray:
    """All of :func:`slot_decision` for ``slots × seeds`` in one numpy pass.

    Returns the ``(len(slots), len(seeds))`` uint8 matrix whose entry
    ``[j, i]`` equals ``slot_decision(seeds[i], slots[j], p, salt)`` — rows
    of the collision matrix D (Eq. 7) or of the identification sensing
    matrix, regenerated in bulk instead of one Python call per entry.
    """
    ensure_probability(p, "p")
    seed_part = np.array(
        [(int(s) & 0xFFFFFFFF) << 32 for s in seeds], dtype=np.uint64
    )
    slot_part = np.array([int(j) & 0xFFFFFFFF for j in slots], dtype=np.uint64)
    if seed_part.size == 0 or slot_part.size == 0:
        return np.zeros((slot_part.size, seed_part.size), dtype=np.uint8)
    salt_part = np.uint64((int(salt) << 17) & 0xFFFFFFFFFFFFFFFF)
    h = _mix64_array(seed_part[None, :] ^ slot_part[:, None] ^ salt_part)
    # uint64 >> 11 fits in 53 bits, so the float64 conversion is exact and
    # the comparison reproduces the scalar path's float division exactly.
    u = (h >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    return (u < p).astype(np.uint8)


def transmit_pattern(seed: int, n_slots: int, p: float = 0.5, salt: int = 0) -> np.ndarray:
    """A tag's binary transmit pattern over ``n_slots`` slots.

    Column ``A[:, i]`` of the identification sensing matrix for tag ``i``.
    """
    ensure_positive_int(n_slots, "n_slots")
    return slot_decision_matrix([seed], range(n_slots), p, salt)[:, 0]


def transmit_pattern_matrix(
    seeds: Sequence[int], n_slots: int, p: float = 0.5, salt: int = 0
) -> np.ndarray:
    """Stack transmit patterns into the ``(n_slots, len(seeds))`` matrix.

    This is exactly the (sub)matrix the reader regenerates during Stage 3 of
    identification (A′ of Eq. 5) and during rateless decoding (D of Eq. 7).
    """
    ensure_positive_int(n_slots, "n_slots")
    return slot_decision_matrix(list(seeds), range(n_slots), p, salt)
