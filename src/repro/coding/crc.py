"""Cyclic redundancy checks (EPC Gen-2 polynomials).

The paper's uplink experiments use 32-bit messages protected by a 5-bit CRC
(§9); the Gen-2 air interface protects longer frames with CRC-16/CCITT. Both
are implemented here as bit-serial CRCs over the canonical bit-array
representation, with the exact preset/inversion conventions of the standard.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Sequence, Union

import numpy as np

from repro.utils.bits import as_bits

__all__ = [
    "CrcSpec",
    "CRC5_GEN2",
    "CRC16_GEN2",
    "crc_compute",
    "crc_append",
    "crc_check",
    "crc_check_matrix",
]


@dataclass(frozen=True)
class CrcSpec:
    """Parameters of a bit-serial CRC.

    Attributes
    ----------
    width:
        Number of CRC bits.
    poly:
        Generator polynomial without the leading x^width term.
    init:
        Preset of the shift register.
    xor_out:
        Value XORed into the register after processing (0 for Gen-2 CRC-5,
        all-ones inversion for Gen-2 CRC-16).
    """

    name: str
    width: int
    poly: int
    init: int
    xor_out: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("CRC width must be positive")
        mask = (1 << self.width) - 1
        for field_name in ("poly", "init", "xor_out"):
            if getattr(self, field_name) & ~mask:
                raise ValueError(f"{field_name} does not fit in {self.width} bits")


#: EPC Gen-2 CRC-5: x^5 + x^3 + 1, preset 0b01001 (standard Annex F).
CRC5_GEN2 = CrcSpec(name="CRC-5/EPC", width=5, poly=0b01001, init=0b01001, xor_out=0)

#: EPC Gen-2 CRC-16: CCITT polynomial 0x1021, preset 0xFFFF, inverted output.
CRC16_GEN2 = CrcSpec(name="CRC-16/EPC", width=16, poly=0x1021, init=0xFFFF, xor_out=0xFFFF)


def crc_compute(bits: Union[Sequence[int], np.ndarray], spec: CrcSpec = CRC5_GEN2) -> np.ndarray:
    """CRC of a bit array, returned as ``spec.width`` bits (MSB first)."""
    data = as_bits(bits)
    register = spec.init
    top = 1 << (spec.width - 1)
    mask = (1 << spec.width) - 1
    for bit in data:
        feedback = ((register & top) >> (spec.width - 1)) ^ int(bit)
        register = ((register << 1) & mask)
        if feedback:
            register ^= spec.poly
    register ^= spec.xor_out
    return np.array(
        [(register >> (spec.width - 1 - i)) & 1 for i in range(spec.width)], dtype=np.uint8
    )


def crc_append(bits: Union[Sequence[int], np.ndarray], spec: CrcSpec = CRC5_GEN2) -> np.ndarray:
    """Return ``bits`` with their CRC appended — a transmit-ready message."""
    data = as_bits(bits)
    return np.concatenate([data, crc_compute(data, spec)])


def crc_check(message: Union[Sequence[int], np.ndarray], spec: CrcSpec = CRC5_GEN2) -> bool:
    """Verify a message created by :func:`crc_append`.

    Returns ``True`` iff the trailing ``spec.width`` bits are the correct CRC
    of the leading payload.
    """
    msg = as_bits(message)
    if msg.size < spec.width:
        return False
    payload, received = msg[: -spec.width], msg[-spec.width :]
    return bool(np.array_equal(crc_compute(payload, spec), received))


@lru_cache(maxsize=64)
def _crc_linear_table(n_payload_bits: int, spec: CrcSpec):
    """Superposition table for a batched CRC over fixed-length payloads.

    The bit-serial update ``r' = shift(r) ⊕ (msb(r) ⊕ b)·poly`` is linear
    over GF(2) in ``(register, bit)``, so the final register of any payload
    is the XOR of (a) the register produced by the all-zeros payload with
    the real preset/xor-out and (b) one per-position contribution per set
    bit, computed with preset 0 and xor-out 0. Returns ``(T, C)`` where
    ``T`` is ``(n_payload_bits, width)`` — row *i* the contribution of bit
    *i* — and ``C`` the ``(width,)`` all-zeros register.
    """
    homogeneous = replace(spec, init=0, xor_out=0)
    table = np.zeros((n_payload_bits, spec.width), dtype=np.uint8)
    unit = np.zeros(n_payload_bits, dtype=np.uint8)
    for i in range(n_payload_bits):
        unit[i] = 1
        table[i] = crc_compute(unit, homogeneous)
        unit[i] = 0
    zeros = crc_compute(np.zeros(n_payload_bits, dtype=np.uint8), spec)
    return table.astype(np.int64), zeros.astype(np.int64)


def crc_check_matrix(messages: np.ndarray, spec: CrcSpec = CRC5_GEN2) -> np.ndarray:
    """Batched :func:`crc_check` over the rows of an ``(N, L)`` bit matrix.

    The rows are packed into uint64 words and every CRC bit evaluates as
    one GF(2) inner product against a cached packed superposition table —
    ``popcount(message & table_row) & 1`` (see
    :func:`repro.coding.gf2.crc_check_packed`) — replacing N bit-serial
    register walks. CRC arithmetic is exact over the integers, so this is
    bit-identical to calling :func:`crc_check` per row (property-tested),
    for any :class:`CrcSpec`.
    """
    from repro.coding.gf2 import crc_check_packed, pack_rows

    bits = np.atleast_2d(np.asarray(messages))
    if bits.ndim != 2:
        raise ValueError("messages must be a 2-D bit matrix")
    if not (((bits == 0) | (bits == 1)).all()):
        # Same contract as the scalar path's as_bits: a ±1 BPSK or raw
        # integer matrix must fail loudly, not verify silently wrong.
        raise ValueError("bit matrices may only contain 0 and 1")
    n, length = bits.shape
    if length < spec.width:
        return np.zeros(n, dtype=bool)
    return crc_check_packed(pack_rows(bits), length, spec)
