"""FM0 (bi-phase space) line coding — EPC Gen-2 baseband uplink code.

FM0 inverts the baseband level at every bit boundary; a data-0 additionally
inverts mid-bit. Each bit therefore occupies two half-bit intervals, and the
code guarantees at least one transition per bit (keeping the reader's clock
recovery locked).

Levels are represented as ±1 floats, two samples (half-bits) per bit.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.utils.bits import as_bits

__all__ = ["fm0_encode", "fm0_decode"]


def fm0_encode(bits: Union[Sequence[int], np.ndarray], initial_level: float = 1.0) -> np.ndarray:
    """Encode bits to an FM0 level sequence (2 half-bits per bit, values ±1).

    ``initial_level`` is the level *before* the first boundary inversion.
    """
    data = as_bits(bits)
    if initial_level not in (1.0, -1.0):
        raise ValueError("initial_level must be +1.0 or -1.0")
    out = np.empty(2 * data.size, dtype=float)
    level = initial_level
    for i, bit in enumerate(data):
        level = -level  # inversion at every bit boundary
        out[2 * i] = level
        if bit == 0:
            level = -level  # data-0: extra mid-bit inversion
        out[2 * i + 1] = level
    return out


def fm0_decode(levels: np.ndarray) -> Tuple[np.ndarray, int]:
    """Decode an FM0 level sequence back to bits.

    The decision per bit is simply whether the two half-bit levels differ
    (data-0) or match (data-1). Works on noisy soft values by comparing the
    signs of the two halves.

    Returns
    -------
    (bits, n_errors_detected):
        ``n_errors_detected`` counts bit boundaries that violate the
        mandatory FM0 boundary inversion — a coarse integrity signal.
    """
    lv = np.asarray(levels, dtype=float).ravel()
    if lv.size % 2:
        raise ValueError("FM0 level sequence length must be even")
    n_bits = lv.size // 2
    first = np.sign(lv[0::2])
    second = np.sign(lv[1::2])
    first[first == 0] = 1.0
    second[second == 0] = 1.0
    bits = (first == second).astype(np.uint8)
    violations = 0
    for i in range(1, n_bits):
        if second[i - 1] == first[i]:  # boundary must invert
            violations += 1
    return bits, violations
