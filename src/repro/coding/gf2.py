"""Bit-packed GF(2) kernels: uint64 words, popcounts, packed CRC checks.

Everything the rateless reader manipulates at the bit level — the (K, M)
message-estimate matrix, the collision matrix D, and the GF(2) CRC
superposition tables — is 0/1 valued, yet historically lived in uint8 (one
byte per bit) or float64 (eight bytes per bit, to feed BLAS). This module
provides the packed representation the native decode kernel builds on:

* :func:`pack_rows` / :func:`unpack_rows` — pack the last axis of a 0/1
  array into uint64 words, 64 bits per word, bit *m* of a row stored in
  word ``m // 64`` at position ``m % 64``. Lengths that are not a multiple
  of 64 pad with zero bits (the round-trip is exact).
* :func:`popcount` — per-element population count. Uses
  ``np.bitwise_count`` when the installed numpy provides it (added in
  numpy 2.0); older numpys fall back to a byte-wise lookup table over a
  uint8 view, bit-identical but slower.
* :func:`gf2_dot_packed` — GF(2) inner products via ``popcount(a & b) & 1``;
  the primitive behind the packed CRC check.
* :func:`crc_check_packed` — batched CRC verification directly on packed
  message rows, with the per-position CRC superposition table itself packed
  into uint64 words. Exact integer arithmetic: always bit-identical to the
  bit-serial register walk, for any :class:`~repro.coding.crc.CrcSpec`.

The word layout is defined arithmetically (shifts on uint64), not through
``np.packbits``/byte views, so packed arrays mean the same thing on any
byte order.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "HAVE_BITWISE_COUNT",
    "WORD_BITS",
    "packed_words",
    "pack_rows",
    "unpack_rows",
    "popcount",
    "gf2_dot_packed",
    "crc_check_packed",
]

#: Bits per packed word.
WORD_BITS = 64

#: Whether the installed numpy has a native popcount ufunc (numpy >= 2.0).
#: Tests monkeypatch this to pin the lookup-table fallback.
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Popcount of every byte value — the fallback table.
_POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)

_SHIFTS = np.arange(WORD_BITS, dtype=np.uint64)

_BYTE_SHIFTS = np.arange(8, dtype=np.uint64) * np.uint64(8)


def packed_words(n_bits: int) -> int:
    """Number of uint64 words needed for ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError("n_bits must be >= 0")
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


def pack_rows(bits: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Pack the last axis of a 0/1 array into uint64 words.

    ``(..., n)`` → ``(..., ceil(n/64))``; bit *m* lands in word ``m // 64``
    at bit position ``m % 64``. Trailing pad bits are zero. ``out``, when
    given, must be a uint64 array of the result shape and receives the
    packed words in place (callers that re-pack the same estimate matrix
    every decode round reuse one scratch buffer instead of allocating).
    """
    bits = np.asarray(bits)
    if not (((bits == 0) | (bits == 1)).all()):
        raise ValueError("pack_rows expects a 0/1 array")
    n = bits.shape[-1]
    n_words = packed_words(n)
    result_shape = bits.shape[:-1] + (n_words,)
    padded = np.zeros(bits.shape[:-1] + (n_words * WORD_BITS,), dtype=np.uint8)
    padded[..., :n] = bits
    # packbits does the bit-level work in C; the byte→word assembly below is
    # arithmetic (shifts), so the layout is byte-order independent.
    as_bytes = np.packbits(padded, axis=-1, bitorder="little")
    grouped = as_bytes.reshape(bits.shape[:-1] + (n_words, 8)).astype(np.uint64)
    if out is None:
        return np.bitwise_or.reduce(grouped << _BYTE_SHIFTS, axis=-1)
    if out.shape != result_shape or out.dtype != np.uint64:
        raise ValueError(
            f"out must be uint64 of shape {result_shape}, got {out.dtype} {out.shape}"
        )
    return np.bitwise_or.reduce(grouped << _BYTE_SHIFTS, axis=-1, out=out)


def unpack_rows(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: ``(..., W)`` words → ``(..., n_bits)`` uint8."""
    words = np.asarray(words, dtype=np.uint64)
    if packed_words(n_bits) > words.shape[-1]:
        raise ValueError(
            f"{n_bits} bits need {packed_words(n_bits)} words, got {words.shape[-1]}"
        )
    expanded = (words[..., :, None] >> _SHIFTS) & np.uint64(1)
    flat = expanded.reshape(words.shape[:-1] + (words.shape[-1] * WORD_BITS,))
    return flat[..., :n_bits].astype(np.uint8)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of an unsigned-integer array.

    Dispatches to ``np.bitwise_count`` when available; otherwise sums a
    byte-wise lookup table over a uint8 view of the same memory. Both
    return uint8 (a uint64 holds at most 64 set bits).
    """
    words = np.asarray(words)
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(words)
    contiguous = np.ascontiguousarray(words)
    as_bytes = contiguous.view(np.uint8).reshape(words.shape + (words.dtype.itemsize,))
    return _POP8[as_bytes].sum(axis=-1, dtype=np.uint8)


def gf2_dot_packed(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """GF(2) inner product(s) along the last (word) axis of packed arrays.

    Broadcasts like an elementwise op on the leading axes; the word axis
    contracts via ``popcount(a & b)`` summed mod 2.
    """
    both = np.asarray(a, dtype=np.uint64) & np.asarray(b, dtype=np.uint64)
    return (popcount(both).sum(axis=-1, dtype=np.int64) & 1).astype(np.uint8)


@lru_cache(maxsize=64)
def _packed_crc_table(n_bits: int, spec) -> tuple:
    """Packed superposition table for CRC over ``n_bits``-bit messages.

    Returns ``(table, zeros, check_idx)``: ``table`` is ``(width, W)`` —
    row *t* the packed payload-positions whose set bits toggle CRC bit *t*
    (from :func:`repro.coding.crc._crc_linear_table`, transposed and
    packed); ``zeros`` the ``(width,)`` register of the all-zeros payload;
    ``check_idx`` the ``(width,)`` bit indices of the received CRC inside
    the message. Payload positions beyond ``n_bits − width`` are zero in
    every table row, so the table can be ANDed against *whole* packed
    messages — the trailing CRC bits never contribute to the parity.
    """
    from repro.coding.crc import _crc_linear_table

    n_payload = n_bits - spec.width
    dense, zeros = _crc_linear_table(n_payload, spec)
    rows = np.zeros((spec.width, n_bits), dtype=np.uint8)
    rows[:, :n_payload] = (dense.T & 1).astype(np.uint8)
    table = pack_rows(rows)
    check_idx = np.arange(n_payload, n_bits)
    return table, zeros.astype(np.uint8), check_idx


def crc_check_packed(packed: np.ndarray, n_bits: int, spec) -> np.ndarray:
    """Batched CRC check over packed message rows.

    ``packed`` is ``(N, W)`` uint64 — each row an ``n_bits``-bit message
    packed by :func:`pack_rows` (payload followed by its ``spec.width``-bit
    CRC). Returns an ``(N,)`` boolean mask, bit-identical to
    :func:`repro.coding.crc.crc_check` row by row: each CRC bit is one
    GF(2) inner product, ``popcount(message & table_row) & 1``.
    """
    packed = np.atleast_2d(np.asarray(packed, dtype=np.uint64))
    if n_bits < spec.width:
        return np.zeros(packed.shape[0], dtype=bool)
    table, zeros, check_idx = _packed_crc_table(int(n_bits), spec)
    # (N, width): parity of message ∩ per-CRC-bit superposition row.
    computed = gf2_dot_packed(packed[:, None, :], table[None, :, :]) ^ zeros[None, :]
    received = (
        packed[:, check_idx // WORD_BITS] >> (check_idx % WORD_BITS).astype(np.uint64)
    ) & np.uint64(1)
    return np.all(computed == received.astype(np.uint8), axis=1)
