"""Walsh-Hadamard orthogonal codes for the synchronous-CDMA baseline.

Walsh codes of length ``n`` (a power of two) are the rows of the Sylvester
Hadamard matrix; any two distinct rows are exactly orthogonal **when chip-
aligned**. The paper's CDMA baseline assigns each of K tags a distinct Walsh
code with spreading factor equal to the smallest power of two ≥ K (hence the
K = 12 anomaly in Figs. 10/11: no length-12 Walsh set exists, so length 16
is used).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_positive_int

__all__ = ["walsh_codes", "walsh_code_length"]


def walsh_code_length(n_users: int) -> int:
    """Smallest power of two ≥ ``n_users`` — the usable spreading factor."""
    ensure_positive_int(n_users, "n_users")
    length = 1
    while length < n_users:
        length *= 2
    return length


def walsh_codes(length: int) -> np.ndarray:
    """The ``length × length`` Walsh code set (±1 entries).

    Row 0 is all-ones; rows are mutually orthogonal: ``W @ W.T = length·I``.
    """
    ensure_positive_int(length, "length")
    if length & (length - 1):
        raise ValueError(f"Walsh code length must be a power of two, got {length}")
    w = np.array([[1.0]])
    while w.shape[0] < length:
        w = np.block([[w, w], [w, -w]])
    return w
