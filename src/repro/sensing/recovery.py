"""Solver-agnostic sparse recovery front end.

The identification protocol (Stage 3) just wants "which entries are active
and what are their channels" — this module wraps the basis-pursuit and
greedy solvers behind one call and owns the support-selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.sensing.basis_pursuit import basis_pursuit_complex
from repro.sensing.greedy import cosamp, iht, omp

__all__ = ["RecoveryResult", "recover_sparse", "support_from_estimate"]

_METHODS = ("bp", "omp", "cosamp", "iht")


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of a sparse recovery.

    Attributes
    ----------
    estimate:
        Full-length complex estimate ``ẑ``.
    support:
        Sorted indices judged active.
    residual_norm:
        ``‖A ẑ_support − y‖₂`` after restricting to the support.
    method:
        Solver that produced the estimate.
    """

    estimate: np.ndarray
    support: np.ndarray
    residual_norm: float
    method: str

    @property
    def sparsity(self) -> int:
        """Number of entries judged active."""
        return int(self.support.size)

    def channels(self) -> np.ndarray:
        """Complex channel estimates on the support."""
        return self.estimate[self.support]


def support_from_estimate(
    estimate: np.ndarray,
    noise_std: float = 0.0,
    relative_floor: float = 0.05,
    max_support: Optional[int] = None,
) -> np.ndarray:
    """Pick the active set from a dense estimate.

    An entry is active when its magnitude clears both an absolute noise
    floor (``4·noise_std/√2`` per complex sample — conservative against
    estimation noise leaking into empty coordinates) and a relative floor
    (``relative_floor`` × the largest magnitude, which adapts to the overall
    signal scale). ``max_support`` optionally caps the set at the largest
    entries — used when K is known.
    """
    mags = np.abs(np.asarray(estimate))
    if mags.size == 0:
        return np.zeros(0, dtype=int)
    peak = float(mags.max())
    if peak == 0.0:
        return np.zeros(0, dtype=int)
    threshold = max(relative_floor * peak, 4.0 * noise_std / np.sqrt(2.0))
    support = np.flatnonzero(mags >= threshold)
    if max_support is not None and support.size > max_support:
        order = np.argsort(mags[support])[::-1]
        support = support[order[:max_support]]
    return np.sort(support)


def recover_sparse(
    matrix: np.ndarray,
    y: np.ndarray,
    sparsity: int,
    method: str = "bp",
    noise_std: float = 0.0,
    max_support: Optional[int] = None,
) -> RecoveryResult:
    """Recover a sparse complex vector from ``y ≈ A z``.

    Parameters
    ----------
    matrix:
        Real binary ``(M, N)`` sensing matrix (the tags' transmit patterns).
    y:
        ``(M,)`` complex received symbols.
    sparsity:
        Expected number of non-zeros (the reader's K̂); greedy solvers use
        it as their target, basis pursuit only for support capping.
    method:
        ``"bp"`` (interior-point LP, the paper's choice), ``"omp"``,
        ``"cosamp"`` or ``"iht"``.
    noise_std:
        Std of the complex measurement noise; sets the BPDN tolerance and
        the support threshold.
    max_support:
        Optional hard cap on the support size (defaults to ``2·sparsity``
        to allow slack in K̂ without letting noise build a huge support).
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {_METHODS}")
    a = np.asarray(matrix, dtype=float)
    yv = np.asarray(y, dtype=complex).ravel()
    if max_support is None:
        max_support = 2 * sparsity

    if method == "bp":
        from repro.sensing.basis_pursuit import RecoveryError

        eps = 2.0 * noise_std / np.sqrt(2.0) if noise_std > 0 else 0.0
        # With more measurements than candidate columns the ∞-norm band can
        # be infeasible for an unlucky noise draw — widen it geometrically.
        for attempt in range(4):
            try:
                estimate = basis_pursuit_complex(a, yv, eps=eps)
                break
            except RecoveryError:
                eps = max(eps, noise_std / np.sqrt(2.0)) * 2.0
        else:
            estimate = basis_pursuit_complex(a, yv, eps=eps * 2.0)
    elif method == "omp":
        estimate = omp(a, yv, sparsity=max_support)
    elif method == "cosamp":
        estimate = cosamp(a, yv, sparsity=max_support)
    else:
        estimate = iht(a, yv, sparsity=max_support)

    support = support_from_estimate(estimate, noise_std=noise_std, max_support=max_support)

    def _polish(sup: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        z = np.zeros_like(estimate)
        if sup.size:
            coef, *_ = np.linalg.lstsq(a[:, sup], yv, rcond=None)
            z[sup] = coef
        return z, yv - a @ z

    polished, residual = _polish(support)

    # Residual-driven augmentation: an L1 solver with a noise-tolerant band
    # legitimately zeroes coefficients comparable to the band, which drops
    # *weak* tags. If the residual power is inconsistent with pure noise,
    # greedily admit the most correlated remaining column and re-polish.
    if noise_std > 0:
        expected = noise_std**2 * a.shape[0]
        while (
            support.size < min(max_support, a.shape[1])
            and float(np.vdot(residual, residual).real) > 1.5 * expected
        ):
            scores = np.abs(a.T @ residual)
            scores[support] = -1.0
            candidate = int(np.argmax(scores))
            if scores[candidate] <= 0:
                break
            new_support = np.sort(np.append(support, candidate))
            new_polished, new_residual = _polish(new_support)
            # Accept only if the newcomer looks like a real tag, not noise
            # (LS coefficient noise on a half-weight column is ~σ/√M, so
            # 2.5·σ/√2 is still many standard errors away).
            if abs(new_polished[candidate]) < 2.5 * noise_std / np.sqrt(2.0):
                break
            support, polished, residual = new_support, new_polished, new_residual

        # Backward elimination: a spurious support entry (e.g. from two
        # near-identical candidate columns) barely explains any energy, so
        # removing it barely moves the residual; a real tag's removal costs
        # ≈ |h|²·(column weight). Prune entries whose removal is cheap.
        improved = True
        while improved and support.size > 0:
            improved = False
            base = float(np.vdot(residual, residual).real)
            for position in range(support.size):
                trial_support = np.delete(support, position)
                trial_polished, trial_residual = _polish(trial_support)
                increase = float(np.vdot(trial_residual, trial_residual).real) - base
                if increase < 9.0 * noise_std**2:
                    support, polished, residual = (
                        trial_support,
                        trial_polished,
                        trial_residual,
                    )
                    improved = True
                    break

    return RecoveryResult(
        estimate=polished,
        support=support,
        residual_norm=float(np.linalg.norm(residual)),
        method=method,
    )
