"""Phase-transition utilities for sparse recovery.

Compressive sensing exhibits a sharp success/failure boundary in the
(measurements M, sparsity K) plane; the paper's claim that ``M ≈ K·log a``
suffices is a point on that surface. These helpers sweep the boundary for
the binary on-air matrices Buzz actually uses, feeding the solver-ablation
bench and providing a principled way to pick ``cs_margin``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.phy.noise import awgn
from repro.sensing.matrices import bernoulli_matrix
from repro.sensing.recovery import recover_sparse
from repro.utils.validation import ensure_positive_int, ensure_probability

__all__ = ["PhaseTransitionPoint", "success_probability", "sweep_measurements"]


@dataclass(frozen=True)
class PhaseTransitionPoint:
    """Empirical recovery probability at one (M, K, N) operating point."""

    n_measurements: int
    sparsity: int
    n_columns: int
    success_rate: float
    trials: int


def success_probability(
    n_measurements: int,
    sparsity: int,
    n_columns: int,
    trials: int = 20,
    method: str = "bp",
    noise_std: float = 0.02,
    density: float = 0.5,
    seed: int = 0,
) -> PhaseTransitionPoint:
    """Probability that the exact support is recovered at this point."""
    ensure_positive_int(n_measurements, "n_measurements")
    ensure_positive_int(sparsity, "sparsity")
    ensure_positive_int(n_columns, "n_columns")
    ensure_positive_int(trials, "trials")
    ensure_probability(density, "density")
    successes = 0
    for trial in range(trials):
        rng = np.random.default_rng(seed * 10_000 + trial)
        a = bernoulli_matrix(n_measurements, n_columns, density, rng).astype(float)
        z = np.zeros(n_columns, dtype=complex)
        support = np.sort(rng.choice(n_columns, size=sparsity, replace=False))
        z[support] = rng.uniform(0.5, 2.0, sparsity) * np.exp(
            1j * rng.uniform(0, 2 * np.pi, sparsity)
        )
        y = a @ z + awgn(n_measurements, noise_std, rng)
        result = recover_sparse(a, y, sparsity=sparsity, method=method, noise_std=noise_std)
        successes += int(set(result.support.tolist()) == set(support.tolist()))
    return PhaseTransitionPoint(
        n_measurements=n_measurements,
        sparsity=sparsity,
        n_columns=n_columns,
        success_rate=successes / trials,
        trials=trials,
    )


def sweep_measurements(
    sparsity: int,
    n_columns: int,
    measurement_grid: Sequence[int],
    **kwargs,
) -> List[PhaseTransitionPoint]:
    """Success probability along an M grid — one slice of the transition."""
    return [
        success_probability(m, sparsity, n_columns, **kwargs) for m in measurement_grid
    ]
