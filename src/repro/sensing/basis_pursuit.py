"""L1-minimization sparse recovery (basis pursuit) via linear programming.

This is the solver family the paper uses for identification Stage 3
(Eq. 6): ``min ‖z‖₁ s.t. A·z = y``, solved with an interior-point method.
We express the real-valued problem as the standard LP

    min  1ᵀu + 1ᵀv        over u, v ≥ 0,  z = u − v
    s.t. A(u − v) = y                    (noiseless), or
         |A(u − v) − y| ≤ ε elementwise  (noise-tolerant BPDN-∞)

and hand it to :func:`scipy.optimize.linprog` (HiGHS). The backscatter
measurements are complex while A is real binary, so the complex problem
splits exactly into two independent real problems on Re(y) and Im(y)
(:func:`basis_pursuit_complex`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import linprog

__all__ = ["basis_pursuit", "basis_pursuit_complex"]


class RecoveryError(RuntimeError):
    """Raised when the LP solver fails to produce a solution."""


def basis_pursuit(
    matrix: np.ndarray,
    y: np.ndarray,
    eps: float = 0.0,
) -> np.ndarray:
    """Solve ``min ‖z‖₁`` subject to ``A z = y`` (or ``‖Az − y‖∞ ≤ eps``).

    Parameters
    ----------
    matrix:
        Real ``(M, N)`` sensing matrix.
    y:
        Real ``(M,)`` measurements.
    eps:
        Per-measurement tolerance. 0 gives exact basis pursuit; for noisy
        measurements pass a few noise standard deviations.

    Returns
    -------
    ``(N,)`` real solution vector.
    """
    a = np.asarray(matrix, dtype=float)
    yv = np.asarray(y, dtype=float).ravel()
    if a.ndim != 2:
        raise ValueError("matrix must be 2-D")
    m, n = a.shape
    if yv.size != m:
        raise ValueError(f"y has length {yv.size}, expected {m}")
    if eps < 0:
        raise ValueError("eps must be >= 0")

    cost = np.ones(2 * n)
    # z = u - v  →  A z = [A, -A] [u; v]
    stacked = np.hstack([a, -a])
    if eps == 0.0:
        result = linprog(
            cost,
            A_eq=stacked,
            b_eq=yv,
            bounds=[(0, None)] * (2 * n),
            method="highs",
        )
    else:
        # |Az - y| <= eps  →  Az <= y + eps  and  -Az <= -(y - eps)
        a_ub = np.vstack([stacked, -stacked])
        b_ub = np.concatenate([yv + eps, -(yv - eps)])
        result = linprog(
            cost,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=[(0, None)] * (2 * n),
            method="highs",
        )
    if not result.success:
        raise RecoveryError(f"linprog failed: {result.message}")
    solution = result.x
    return solution[:n] - solution[n:]


def basis_pursuit_complex(
    matrix: np.ndarray,
    y: np.ndarray,
    eps: float = 0.0,
) -> np.ndarray:
    """Basis pursuit for complex measurements against a real matrix.

    Because A is real, Re/Im decouple: two independent real programs whose
    solutions recombine into the complex estimate. ``eps`` applies to each
    component separately (noise std per component is ``noise_std/√2``).
    """
    yv = np.asarray(y).ravel()
    z_real = basis_pursuit(matrix, np.real(yv), eps)
    z_imag = basis_pursuit(matrix, np.imag(yv), eps)
    return z_real + 1j * z_imag
