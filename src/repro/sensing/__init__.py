"""Compressive-sensing substrate.

Buzz's identification Stage 3 recovers a K-sparse complex vector (active
temporary ids and their channels) from ``M ≈ K·log a`` collision symbols
(Eq. 5/6). This package provides:

* :mod:`repro.sensing.matrices` — sparse binary sensing matrices and their
  diagnostics (the tags' transmit patterns *are* the matrix);
* :mod:`repro.sensing.basis_pursuit` — the paper's solver family: L1
  minimization as a linear program on an interior-point backend, both
  noiseless (basis pursuit) and noise-tolerant (BPDN);
* :mod:`repro.sensing.greedy` — OMP / CoSaMP / IHT greedy alternatives used
  in the solver ablation;
* :mod:`repro.sensing.recovery` — a solver-agnostic front end returning the
  recovered vector, its support and diagnostics.
"""

from repro.sensing.basis_pursuit import basis_pursuit, basis_pursuit_complex
from repro.sensing.greedy import cosamp, iht, omp
from repro.sensing.matrices import (
    bernoulli_matrix,
    coherence,
    column_weight_matrix,
    expected_collisions_per_slot,
)
from repro.sensing.recovery import RecoveryResult, recover_sparse, support_from_estimate

__all__ = [
    "RecoveryResult",
    "basis_pursuit",
    "basis_pursuit_complex",
    "bernoulli_matrix",
    "coherence",
    "column_weight_matrix",
    "cosamp",
    "expected_collisions_per_slot",
    "iht",
    "omp",
    "recover_sparse",
    "support_from_estimate",
]
