"""Sparse binary sensing matrices.

In Buzz the sensing matrix is *physical*: entry ``A[j, i] = 1`` means tag
``i`` reflects during slot ``j``. Tags generate their own column from their
id, so the only matrices realisable on the air are binary, and sparsity
(few ones per row) is what keeps both decoding cheap and collisions
shallow. These constructors exist for controlled experiments and tests;
protocol code builds the same matrices through
:func:`repro.coding.prng.transmit_pattern_matrix` so the tag and reader
views stay bit-identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import ensure_positive_int, ensure_probability

__all__ = [
    "bernoulli_matrix",
    "column_weight_matrix",
    "coherence",
    "expected_collisions_per_slot",
]


def bernoulli_matrix(
    n_rows: int, n_cols: int, p: float, rng: np.random.Generator
) -> np.ndarray:
    """i.i.d. Bernoulli(p) binary matrix — the on-air pattern model."""
    ensure_positive_int(n_rows, "n_rows")
    ensure_positive_int(n_cols, "n_cols")
    ensure_probability(p, "p")
    return (rng.random((n_rows, n_cols)) < p).astype(np.uint8)


def column_weight_matrix(
    n_rows: int, n_cols: int, weight: int, rng: np.random.Generator
) -> np.ndarray:
    """Binary matrix with exactly ``weight`` ones per column.

    Fixed column weight is the classic construction for sparse-recovery
    guarantees via expansion [Berinde et al. 2008], and models a tag that
    transmits a fixed number of times.
    """
    ensure_positive_int(n_rows, "n_rows")
    ensure_positive_int(n_cols, "n_cols")
    ensure_positive_int(weight, "weight")
    if weight > n_rows:
        raise ValueError("column weight cannot exceed the number of rows")
    matrix = np.zeros((n_rows, n_cols), dtype=np.uint8)
    for col in range(n_cols):
        rows = rng.choice(n_rows, size=weight, replace=False)
        matrix[rows, col] = 1
    return matrix


def coherence(matrix: np.ndarray) -> float:
    """Mutual coherence: max |<a_i, a_j>| / (|a_i||a_j|) over column pairs.

    Lower coherence → better sparse recovery. All-zero columns are skipped
    (they carry no information and would make the ratio undefined).
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2 or a.shape[1] < 2:
        raise ValueError("need a 2-D matrix with at least two columns")
    norms = np.linalg.norm(a, axis=0)
    keep = norms > 0
    a = a[:, keep]
    norms = norms[keep]
    if a.shape[1] < 2:
        return 0.0
    gram = np.abs(a.T @ a) / np.outer(norms, norms)
    np.fill_diagonal(gram, 0.0)
    return float(gram.max())


def expected_collisions_per_slot(n_active: int, p: float) -> float:
    """Expected number of concurrent reflectors per slot, ``n_active · p``.

    Buzz tunes ``p`` so this stays small (a *sparse* code): each received
    symbol is then a shallow collision that the BP decoder can peel.
    """
    ensure_positive_int(n_active, "n_active")
    ensure_probability(p, "p")
    return float(n_active * p)
