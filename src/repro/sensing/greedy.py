"""Greedy sparse-recovery solvers: OMP, CoSaMP, IHT.

The paper notes faster alternatives to LP exist ([5] Berinde & Indyk,
sequential sparse matching pursuit); we provide the standard greedy family
both as a practical speed-up for large candidate sets and as the subject of
the solver ablation bench. All solvers accept complex measurements with a
real sensing matrix (the backscatter setting).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import ensure_positive_int

__all__ = ["omp", "cosamp", "iht"]


def _lstsq_on_support(a: np.ndarray, y: np.ndarray, support: np.ndarray) -> np.ndarray:
    """Least-squares fit of y on the chosen columns; returns a full-size vector."""
    z = np.zeros(a.shape[1], dtype=complex)
    if support.size:
        coef, *_ = np.linalg.lstsq(a[:, support], y, rcond=None)
        z[support] = coef
    return z


def omp(
    matrix: np.ndarray,
    y: np.ndarray,
    sparsity: int,
    tol: float = 1e-9,
) -> np.ndarray:
    """Orthogonal Matching Pursuit for ``y ≈ A z`` with ``‖z‖₀ ≤ sparsity``.

    Iteratively picks the column most correlated with the residual and
    re-fits by least squares. Stops early when the residual norm falls
    below ``tol``.
    """
    a = np.asarray(matrix, dtype=float)
    yv = np.asarray(y, dtype=complex).ravel()
    ensure_positive_int(sparsity, "sparsity")
    m, n = a.shape
    if yv.size != m:
        raise ValueError(f"y has length {yv.size}, expected {m}")
    norms = np.linalg.norm(a, axis=0)
    usable = norms > 0
    residual = yv.copy()
    support: list[int] = []
    for _ in range(min(sparsity, n)):
        scores = np.abs(a.T @ residual)
        scores[~usable] = -1.0
        scores[support] = -1.0
        with np.errstate(divide="ignore", invalid="ignore"):
            normalized = np.where(usable, scores / np.where(norms > 0, norms, 1.0), -1.0)
        best = int(np.argmax(normalized))
        if normalized[best] <= 0:
            break
        support.append(best)
        z = _lstsq_on_support(a, yv, np.array(support, dtype=int))
        residual = yv - a @ z
        if np.linalg.norm(residual) <= tol:
            break
    return _lstsq_on_support(a, yv, np.array(sorted(support), dtype=int))


def cosamp(
    matrix: np.ndarray,
    y: np.ndarray,
    sparsity: int,
    max_iter: int = 50,
    tol: float = 1e-9,
) -> np.ndarray:
    """Compressive Sampling Matching Pursuit (Needell & Tropp).

    Each iteration merges the 2k largest proxy correlations into the current
    support, solves least squares, and prunes back to the k largest entries.
    """
    a = np.asarray(matrix, dtype=float)
    yv = np.asarray(y, dtype=complex).ravel()
    ensure_positive_int(sparsity, "sparsity")
    ensure_positive_int(max_iter, "max_iter")
    m, n = a.shape
    if yv.size != m:
        raise ValueError(f"y has length {yv.size}, expected {m}")
    z = np.zeros(n, dtype=complex)
    residual = yv.copy()
    prev_residual_norm = np.inf
    for _ in range(max_iter):
        proxy = np.abs(a.T @ residual)
        candidates = np.argsort(proxy)[::-1][: 2 * sparsity]
        merged = np.union1d(candidates, np.flatnonzero(z))
        z_merged = _lstsq_on_support(a, yv, merged.astype(int))
        keep = np.argsort(np.abs(z_merged))[::-1][:sparsity]
        z = np.zeros(n, dtype=complex)
        z[keep] = z_merged[keep]
        # final least-squares polish on the pruned support
        z = _lstsq_on_support(a, yv, np.flatnonzero(np.abs(z) > 0).astype(int))
        residual = yv - a @ z
        norm = float(np.linalg.norm(residual))
        if norm <= tol or abs(prev_residual_norm - norm) <= tol:
            break
        prev_residual_norm = norm
    return z


def iht(
    matrix: np.ndarray,
    y: np.ndarray,
    sparsity: int,
    max_iter: int = 300,
    step: Optional[float] = None,
    tol: float = 1e-9,
) -> np.ndarray:
    """Normalized Iterative Hard Thresholding: ``z ← H_k(z + μ Aᵀ(y − Az))``.

    When ``step`` is omitted the per-iteration step is the NIHT choice
    ``μ = ‖g_S‖² / ‖A g_S‖²`` with ``g`` the gradient restricted to the
    current support — far more robust than a fixed ``1/‖A‖₂²`` on the
    poorly-conditioned binary matrices of this domain (Blumensath &
    Davies 2010). The estimate is finished with a least-squares polish on
    the final support.
    """
    a = np.asarray(matrix, dtype=float)
    yv = np.asarray(y, dtype=complex).ravel()
    ensure_positive_int(sparsity, "sparsity")
    ensure_positive_int(max_iter, "max_iter")
    m, n = a.shape
    if yv.size != m:
        raise ValueError(f"y has length {yv.size}, expected {m}")
    z = np.zeros(n, dtype=complex)
    support = np.zeros(0, dtype=int)
    for _ in range(max_iter):
        gradient = a.T @ (yv - a @ z)
        if step is not None:
            mu = step
        else:
            g_restricted = gradient[support] if support.size else gradient
            cols = a[:, support] if support.size else a
            denom = float(np.linalg.norm(cols @ g_restricted) ** 2) if g_restricted.size else 0.0
            numer = float(np.linalg.norm(g_restricted) ** 2)
            mu = numer / denom if denom > 0 else 1.0
        z_new = z + mu * gradient
        keep = np.argsort(np.abs(z_new))[::-1][:sparsity]
        pruned = np.zeros(n, dtype=complex)
        pruned[keep] = z_new[keep]
        new_support = np.sort(keep[np.abs(pruned[keep]) > 0])
        if np.linalg.norm(pruned - z) <= tol:
            z, support = pruned, new_support
            break
        z, support = pruned, new_support
    return _lstsq_on_support(a, yv, support)
